package tree

import (
	"errors"
	"fmt"
	"math"
)

// Builder constructs trees incrementally. The root (node 0) exists from
// the start; every other node is added under an existing parent, which
// makes cycles impossible by construction.
type Builder struct {
	parent  []int
	clients [][]int
}

// NewBuilder returns a builder holding only the root node.
func NewBuilder() *Builder {
	return &Builder{parent: []int{-1}, clients: [][]int{nil}}
}

// Root returns the id of the root node.
func (b *Builder) Root() int { return 0 }

// N returns the number of nodes added so far.
func (b *Builder) N() int { return len(b.parent) }

// AddNode adds an internal node under parent and returns its id. It
// panics if parent does not exist; builders are driver code where an
// invalid parent is a programming error.
func (b *Builder) AddNode(parent int) int {
	if parent < 0 || parent >= len(b.parent) {
		panic(fmt.Sprintf("tree: AddNode under unknown parent %d", parent))
	}
	id := len(b.parent)
	b.parent = append(b.parent, parent)
	b.clients = append(b.clients, nil)
	return id
}

// AddClient attaches a client issuing req requests to node j.
func (b *Builder) AddClient(j, req int) {
	if j < 0 || j >= len(b.parent) {
		panic(fmt.Sprintf("tree: AddClient under unknown node %d", j))
	}
	if req < 0 {
		panic(fmt.Sprintf("tree: AddClient with negative requests %d", req))
	}
	b.clients[j] = append(b.clients[j], req)
}

// Build finalises the tree. The builder remains usable (Build copies).
func (b *Builder) Build() (*Tree, error) {
	raw := newRawBuilder(len(b.parent))
	copy(raw.parent, b.parent)
	for j := range b.clients {
		raw.clients[j] = append([]int(nil), b.clients[j]...)
	}
	return raw.finish()
}

// MustBuild is Build for tests and examples where failure is impossible.
func (b *Builder) MustBuild() *Tree {
	t, err := b.Build()
	if err != nil {
		panic(err)
	}
	return t
}

// rawBuilder assembles the derived CSR structures (child spans, client
// spans, post order, depths, wave schedule) shared by Builder.Build,
// FromParents and Generate. Clients arrive either as per-node lists
// (clients) or, from the mega-tree generator, already flattened
// (clientStart/clientReqs); the flat form wins when both are set.
type rawBuilder struct {
	parent      []int
	clients     [][]int
	clientStart []int32
	clientReqs  []int
}

func newRawBuilder(n int) *rawBuilder {
	rb := &rawBuilder{parent: make([]int, n), clients: make([][]int, n)}
	rb.parent[0] = -1
	return rb
}

func (rb *rawBuilder) finish() (*Tree, error) {
	n := len(rb.parent)
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("tree: %d nodes exceed the CSR offset range", n)
	}
	t := &Tree{
		parent:    rb.parent,
		depth:     make([]int, n),
		demandGen: make([]uint64, n),
	}

	// Children in CSR form via a counting sort on the parent vector;
	// filling by ascending j keeps every span in ascending id order.
	t.childStart = make([]int32, n+1)
	for j := 1; j < n; j++ {
		t.childStart[rb.parent[j]+1]++
	}
	for j := 0; j < n; j++ {
		t.childStart[j+1] += t.childStart[j]
	}
	t.childIDs = make([]int, n-1)
	next := make([]int32, n)
	copy(next, t.childStart[:n])
	for j := 1; j < n; j++ {
		p := rb.parent[j]
		t.childIDs[next[p]] = j
		next[p]++
	}

	// Client spans: adopt the generator's pre-flattened arrays or
	// flatten the per-node lists.
	if rb.clientStart != nil {
		t.clientStart, t.clientReqs = rb.clientStart, rb.clientReqs
	} else {
		total := 0
		for _, cl := range rb.clients {
			total += len(cl)
		}
		if total > math.MaxInt32 {
			return nil, fmt.Errorf("tree: %d clients exceed the CSR offset range", total)
		}
		t.clientStart = make([]int32, n+1)
		t.clientReqs = make([]int, 0, total)
		for j := 0; j < n; j++ {
			t.clientStart[j] = int32(len(t.clientReqs))
			t.clientReqs = append(t.clientReqs, rb.clients[j]...)
		}
		t.clientStart[n] = int32(len(t.clientReqs))
	}

	// Iterative DFS from the root assigns depths and detects
	// unreachable nodes (which would indicate a cycle among non-root
	// nodes in a FromParents input).
	t.post = make([]int, 0, n)
	visited := make([]bool, n)
	type frame struct{ node, next int }
	stack := []frame{{0, 0}}
	visited[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if kids := t.Children(f.node); f.next < len(kids) {
			c := kids[f.next]
			f.next++
			if visited[c] {
				return nil, fmt.Errorf("tree: node %d reached twice; parent vector has a cycle", c)
			}
			visited[c] = true
			t.depth[c] = t.depth[f.node] + 1
			stack = append(stack, frame{c, 0})
			continue
		}
		t.post = append(t.post, f.node)
		stack = stack[:len(stack)-1]
	}
	if len(t.post) != n {
		return nil, errors.New("tree: parent vector contains nodes unreachable from the root")
	}

	// Wave schedule: heights bottom-up over the post order, then a
	// counting sort by height (ascending j keeps waves in id order).
	height := make([]int32, n)
	maxH := int32(0)
	for _, j := range t.post {
		h := int32(0)
		for _, c := range t.Children(j) {
			if hc := height[c] + 1; hc > h {
				h = hc
			}
		}
		height[j] = h
		if h > maxH {
			maxH = h
		}
	}
	t.waveStart = make([]int32, maxH+2)
	for _, h := range height {
		t.waveStart[h+1]++
	}
	for h := int32(0); h <= maxH; h++ {
		t.waveStart[h+1] += t.waveStart[h]
	}
	t.waveNodes = make([]int, n)
	nextW := next[:maxH+1]
	copy(nextW, t.waveStart[:maxH+1])
	for j := 0; j < n; j++ {
		h := height[j]
		t.waveNodes[nextW[h]] = j
		nextW[h]++
	}
	return t, nil
}
