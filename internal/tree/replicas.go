package tree

import (
	"fmt"
	"strings"
)

// NoMode marks the absence of a replica in a Replicas set.
const NoMode uint8 = 0

// Replicas maps each internal node of a tree to an operating mode:
// NoMode (0) when the node hosts no replica, or a 1-based mode index
// otherwise. The same type describes pre-existing deployments (the
// paper's set E with initial modes) and computed solutions (the set R).
// In single-capacity problems every equipped node uses mode 1.
type Replicas struct {
	mode []uint8
}

// NewReplicas returns an empty replica set over n nodes.
func NewReplicas(n int) *Replicas { return &Replicas{mode: make([]uint8, n)} }

// ReplicasOf returns an empty replica set sized for tree t.
func ReplicasOf(t *Tree) *Replicas { return NewReplicas(t.N()) }

// N returns the number of nodes the set is defined over.
func (r *Replicas) N() int { return len(r.mode) }

// Has reports whether node j hosts a replica.
func (r *Replicas) Has(j int) bool { return r.mode[j] != NoMode }

// Mode returns the 1-based operating mode of the replica at node j, or
// NoMode if j hosts no replica.
func (r *Replicas) Mode(j int) uint8 { return r.mode[j] }

// Set places a replica at node j operating at the 1-based mode m.
func (r *Replicas) Set(j int, m uint8) {
	if m == NoMode {
		panic("tree: Replicas.Set with mode 0; use Unset")
	}
	r.mode[j] = m
}

// Unset removes the replica at node j, if any.
func (r *Replicas) Unset(j int) { r.mode[j] = NoMode }

// Reset removes every replica, recycling the set for a new solution.
func (r *Replicas) Reset() {
	for j := range r.mode {
		r.mode[j] = NoMode
	}
}

// Count returns the number of equipped nodes.
func (r *Replicas) Count() int {
	c := 0
	for _, m := range r.mode {
		if m != NoMode {
			c++
		}
	}
	return c
}

// Nodes returns the equipped node ids in ascending order.
func (r *Replicas) Nodes() []int {
	var out []int
	for j, m := range r.mode {
		if m != NoMode {
			out = append(out, j)
		}
	}
	return out
}

// CountByMode returns, for a model with M modes, how many replicas
// operate at each mode; index 0 of the result corresponds to mode 1.
// It panics if any replica uses a mode above M.
func (r *Replicas) CountByMode(M int) []int {
	out := make([]int, M)
	for j, m := range r.mode {
		if m == NoMode {
			continue
		}
		if int(m) > M {
			panic(fmt.Sprintf("tree: node %d operates at mode %d > M=%d", j, m, M))
		}
		out[m-1]++
	}
	return out
}

// Reused returns the number of nodes equipped in both r and other
// (the paper's e = |R ∩ E|, ignoring modes).
func (r *Replicas) Reused(other *Replicas) int {
	c := 0
	for j, m := range r.mode {
		if m != NoMode && other.mode[j] != NoMode {
			c++
		}
	}
	return c
}

// Clone returns a deep copy.
func (r *Replicas) Clone() *Replicas {
	return &Replicas{mode: append([]uint8(nil), r.mode...)}
}

// Equal reports whether both sets equip the same nodes at the same modes.
func (r *Replicas) Equal(other *Replicas) bool {
	if len(r.mode) != len(other.mode) {
		return false
	}
	for j := range r.mode {
		if r.mode[j] != other.mode[j] {
			return false
		}
	}
	return true
}

// String renders the set as {node@mode, ...}.
func (r *Replicas) String() string {
	var sb strings.Builder
	sb.WriteByte('{')
	first := true
	for j, m := range r.mode {
		if m == NoMode {
			continue
		}
		if !first {
			sb.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&sb, "%d@%d", j, m)
	}
	sb.WriteByte('}')
	return sb.String()
}
