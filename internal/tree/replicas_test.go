package tree

import "testing"

func TestReplicasBasics(t *testing.T) {
	r := NewReplicas(5)
	if r.N() != 5 || r.Count() != 0 {
		t.Fatalf("fresh set: N=%d Count=%d", r.N(), r.Count())
	}
	r.Set(2, 1)
	r.Set(4, 3)
	if !r.Has(2) || !r.Has(4) || r.Has(0) {
		t.Fatal("Has wrong")
	}
	if r.Mode(4) != 3 || r.Mode(0) != NoMode {
		t.Fatalf("Mode wrong: %d, %d", r.Mode(4), r.Mode(0))
	}
	if r.Count() != 2 {
		t.Fatalf("Count = %d", r.Count())
	}
	nodes := r.Nodes()
	if len(nodes) != 2 || nodes[0] != 2 || nodes[1] != 4 {
		t.Fatalf("Nodes = %v", nodes)
	}
	r.Unset(2)
	if r.Has(2) || r.Count() != 1 {
		t.Fatal("Unset failed")
	}
}

func TestReplicasSetZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(j, 0) did not panic")
		}
	}()
	NewReplicas(1).Set(0, 0)
}

func TestCountByMode(t *testing.T) {
	r := NewReplicas(6)
	r.Set(0, 1)
	r.Set(1, 2)
	r.Set(2, 2)
	r.Set(3, 1)
	got := r.CountByMode(3)
	want := []int{2, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("CountByMode = %v, want %v", got, want)
		}
	}
}

func TestCountByModePanicsOnOverflow(t *testing.T) {
	r := NewReplicas(1)
	r.Set(0, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for mode above M")
		}
	}()
	r.CountByMode(2)
}

func TestReused(t *testing.T) {
	a := NewReplicas(5)
	b := NewReplicas(5)
	a.Set(1, 1)
	a.Set(2, 1)
	a.Set(3, 1)
	b.Set(2, 2) // modes ignored for reuse counting
	b.Set(3, 1)
	b.Set(4, 1)
	if got := a.Reused(b); got != 2 {
		t.Fatalf("Reused = %d, want 2", got)
	}
	if got := b.Reused(a); got != 2 {
		t.Fatalf("Reused not symmetric: %d", got)
	}
}

func TestCloneEqual(t *testing.T) {
	a := NewReplicas(4)
	a.Set(1, 2)
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(2, 1)
	if a.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	if a.Has(2) {
		t.Fatal("clone aliased original")
	}
	if a.Equal(NewReplicas(5)) {
		t.Fatal("different sizes equal")
	}
}

func TestReplicasString(t *testing.T) {
	r := NewReplicas(4)
	if got := r.String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
	r.Set(1, 2)
	r.Set(3, 1)
	if got := r.String(); got != "{1@2, 3@1}" {
		t.Fatalf("String = %q", got)
	}
}
