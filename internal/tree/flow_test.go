package tree

import (
	"errors"
	"testing"

	"replicatree/internal/rng"
)

func TestFlowsNoServers(t *testing.T) {
	tr := paperTree(2)
	r := ReplicasOf(tr)
	loads, unserved := Flows(tr, r)
	if unserved != 13 {
		t.Fatalf("unserved = %d, want 13", unserved)
	}
	for j, l := range loads {
		if l != 0 {
			t.Fatalf("load[%d] = %d with no servers", j, l)
		}
	}
}

func TestFlowsPaperFigure1Scenarios(t *testing.T) {
	// Keeping the pre-existing server at B leaves 7 requests going up
	// through A; a server at C instead leaves 4; servers at both leave 0.
	tr := paperTree(0)
	const A, B, C = 1, 2, 3

	r := ReplicasOf(tr)
	r.Set(B, 1)
	up := flowThrough(tr, r, A)
	if up != 7 {
		t.Fatalf("server at B: %d requests through A, want 7", up)
	}

	r = ReplicasOf(tr)
	r.Set(C, 1)
	if up = flowThrough(tr, r, A); up != 4 {
		t.Fatalf("server at C: %d requests through A, want 4", up)
	}

	r.Set(B, 1)
	if up = flowThrough(tr, r, A); up != 0 {
		t.Fatalf("servers at B and C: %d requests through A, want 0", up)
	}
}

// flowThrough returns the number of requests leaving node j upward.
func flowThrough(tr *Tree, r *Replicas, j int) int {
	up := make(map[int]int)
	for _, n := range tr.PostOrder() {
		f := tr.ClientSum(n)
		for _, c := range tr.Children(n) {
			f += up[c]
		}
		if r.Has(n) {
			up[n] = 0
		} else {
			up[n] = f
		}
	}
	return up[j]
}

func TestFlowsRootServer(t *testing.T) {
	tr := paperTree(2)
	r := ReplicasOf(tr)
	r.Set(tr.Root(), 1)
	loads, unserved := Flows(tr, r)
	if unserved != 0 {
		t.Fatalf("unserved = %d", unserved)
	}
	if loads[0] != 13 {
		t.Fatalf("root load = %d, want 13", loads[0])
	}
}

func TestFlowsClosestAbsorption(t *testing.T) {
	tr := paperTree(2)
	r := ReplicasOf(tr)
	r.Set(0, 1)
	r.Set(2, 1) // B absorbs its 4 requests
	loads, unserved := Flows(tr, r)
	if unserved != 0 {
		t.Fatalf("unserved = %d", unserved)
	}
	if loads[2] != 4 {
		t.Fatalf("B load = %d, want 4", loads[2])
	}
	if loads[0] != 9 { // root client 2 + C's 7
		t.Fatalf("root load = %d, want 9", loads[0])
	}
}

func TestFlowsPanicsOnSizeMismatch(t *testing.T) {
	tr := paperTree(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on size mismatch")
		}
	}()
	Flows(tr, NewReplicas(2))
}

func TestServerFor(t *testing.T) {
	tr := paperTree(2)
	r := ReplicasOf(tr)
	r.Set(1, 1) // A
	if got := ServerFor(tr, r, 2); got != 1 {
		t.Fatalf("ServerFor(B) = %d, want A=1", got)
	}
	if got := ServerFor(tr, r, 1); got != 1 {
		t.Fatalf("ServerFor(A) = %d, want itself", got)
	}
	if got := ServerFor(tr, r, 0); got != -1 {
		t.Fatalf("ServerFor(root) = %d, want -1", got)
	}
}

func TestAssignmentsMatchesServerFor(t *testing.T) {
	tr := paperTree(2)
	r := ReplicasOf(tr)
	r.Set(0, 1)
	r.Set(3, 2)
	got := Assignments(tr, r)
	for j := 0; j < tr.N(); j++ {
		if want := ServerFor(tr, r, j); got[j] != want {
			t.Errorf("Assignments[%d] = %d, want %d", j, got[j], want)
		}
	}
}

func TestValidateUniform(t *testing.T) {
	tr := paperTree(2)
	r := ReplicasOf(tr)
	r.Set(0, 1)
	if err := ValidateUniform(tr, r, 13); err != nil {
		t.Fatalf("W=13 should be valid: %v", err)
	}
	err := ValidateUniform(tr, r, 10)
	var ce *CapacityError
	if !errors.As(err, &ce) {
		t.Fatalf("W=10 error = %v, want CapacityError", err)
	}
	if ce.Node != 0 || ce.Load != 13 || ce.Cap != 10 {
		t.Fatalf("CapacityError = %+v", ce)
	}
}

func TestValidateUnserved(t *testing.T) {
	tr := paperTree(2)
	r := ReplicasOf(tr)
	r.Set(2, 1) // B only: root client and C unserved
	err := ValidateUniform(tr, r, 100)
	var ce *CapacityError
	if !errors.As(err, &ce) {
		t.Fatalf("error = %v", err)
	}
	if ce.Node != -1 || ce.Load != 9 {
		t.Fatalf("CapacityError = %+v, want unserved 9", ce)
	}
	if ce.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestValidateModal(t *testing.T) {
	tr := paperTree(0)
	r := ReplicasOf(tr)
	r.Set(2, 1) // B: 4 requests at mode 1 (cap 5)
	r.Set(3, 2) // C: 7 requests at mode 2 (cap 10)
	caps := func(m uint8) int { return []int{5, 10}[m-1] }
	if err := Validate(tr, r, caps); err != nil {
		t.Fatalf("valid modal solution rejected: %v", err)
	}
	r.Set(3, 1) // C at mode 1 overflows
	if err := Validate(tr, r, caps); err == nil {
		t.Fatal("overloaded mode-1 server accepted")
	}
}

func TestValidateEmptyTreeNoClients(t *testing.T) {
	b := NewBuilder()
	b.AddNode(0)
	tr := b.MustBuild()
	r := ReplicasOf(tr)
	if err := ValidateUniform(tr, r, 1); err != nil {
		t.Fatalf("tree without clients needs no servers: %v", err)
	}
}

// TestEngineResetRebindsAcrossTrees pins the engine's pooled rebind:
// one engine swept over differently-shaped trees via Reset must match
// fresh engines on every tree, for every policy.
func TestEngineResetRebindsAcrossTrees(t *testing.T) {
	shared := NewEngine(MustGenerate(FatConfig(10), rng.New(1)))
	for i := 0; i < 8; i++ {
		cfg := FatConfig(20 + i*9)
		if i%2 == 1 {
			cfg = HighConfig(20 + i*9)
		}
		tr := MustGenerate(cfg, rng.New(uint64(100+i)))
		r := ReplicasOf(tr)
		for j := 0; j < tr.N(); j += 2 {
			r.Set(j, 1)
		}
		shared.Reset(tr)
		fresh := NewEngine(tr)
		for _, p := range Policies() {
			a := shared.EvalUniform(r, p, 10)
			b := fresh.EvalUniform(r, p, 10)
			if a.Unserved != b.Unserved {
				t.Fatalf("tree %d %v: unserved %d != %d", i, p, a.Unserved, b.Unserved)
			}
			for j := range a.Loads {
				if a.Loads[j] != b.Loads[j] {
					t.Fatalf("tree %d %v: load[%d] %d != %d", i, p, j, a.Loads[j], b.Loads[j])
				}
			}
		}
	}
}
