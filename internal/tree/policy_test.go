package tree

import (
	"strings"
	"testing"
)

func TestPolicyStringParse(t *testing.T) {
	for _, p := range Policies() {
		if !p.Valid() {
			t.Fatalf("Policies() returned invalid %v", p)
		}
		back, err := ParsePolicy(p.String())
		if err != nil || back != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), back, err)
		}
	}
	if _, err := ParsePolicy("nearest"); err == nil {
		t.Fatal("ParsePolicy accepted an unknown name")
	}
	if Policy(200).Valid() {
		t.Fatal("Policy(200) reported valid")
	}
	if s := Policy(200).String(); !strings.Contains(s, "200") {
		t.Fatalf("Policy(200).String() = %q", s)
	}
}

// chainTree builds root(0) - A(1) - B(2) with clients {4, 3} at B.
func chainTree() *Tree {
	b := NewBuilder()
	a := b.AddNode(b.Root())
	bb := b.AddNode(a)
	b.AddClient(bb, 4)
	b.AddClient(bb, 3)
	return b.MustBuild()
}

// The canonical separation example: with servers at B and the root and
// W=5, the closest policy overloads B with all 7 requests, the upwards
// policy sends one whole client past B to the root, and the multiple
// policy splits a client so B runs exactly at capacity.
func TestPolicySeparationOnChain(t *testing.T) {
	tr := chainTree()
	r := ReplicasOf(tr)
	r.Set(2, 1) // B
	r.Set(0, 1) // root
	e := NewEngine(tr)
	const W = 5

	if err := e.ValidateUniform(r, PolicyClosest, W); err == nil {
		t.Fatal("closest policy accepted an overloaded server")
	}

	res := e.EvalUniform(r, PolicyUpwards, W)
	if res.Unserved != 0 {
		t.Fatalf("upwards unserved = %d", res.Unserved)
	}
	if res.Loads[2] != 4 || res.Loads[0] != 3 {
		t.Fatalf("upwards loads = %v, want B=4 root=3", res.Loads)
	}
	if err := e.ValidateUniform(r, PolicyUpwards, W); err != nil {
		t.Fatalf("upwards validation: %v", err)
	}

	res = e.EvalUniform(r, PolicyMultiple, W)
	if res.Unserved != 0 {
		t.Fatalf("multiple unserved = %d", res.Unserved)
	}
	if res.Loads[2] != 5 || res.Loads[0] != 2 {
		t.Fatalf("multiple loads = %v, want B=5 root=2", res.Loads)
	}
}

// With only B equipped at W=5 the upwards policy must leave a whole
// client unserved while the multiple policy drops only the overflow.
func TestPolicyUnservedGranularity(t *testing.T) {
	tr := chainTree()
	r := ReplicasOf(tr)
	r.Set(2, 1)
	e := NewEngine(tr)

	if res := e.EvalUniform(r, PolicyUpwards, 5); res.Unserved != 3 {
		t.Fatalf("upwards unserved = %d, want the whole 3-request client", res.Unserved)
	}
	if res := e.EvalUniform(r, PolicyMultiple, 5); res.Unserved != 2 {
		t.Fatalf("multiple unserved = %d, want the 2-request overflow", res.Unserved)
	}
	if res := e.EvalUniform(r, PolicyClosest, 5); res.Unserved != 0 {
		t.Fatalf("closest unserved = %d (routing ignores capacities)", res.Unserved)
	}
}

// A server bypassed under upwards still serves later-arriving smaller
// demands: best-fit-decreasing keeps the largest fitting clients low.
func TestPolicyUpwardsBestFitDecreasing(t *testing.T) {
	b := NewBuilder()
	a := b.AddNode(b.Root())
	b.AddClient(a, 6)
	b.AddClient(a, 4)
	b.AddClient(a, 3)
	tr := b.MustBuild()
	r := ReplicasOf(tr)
	r.Set(1, 1)
	r.Set(0, 1)
	e := NewEngine(tr)
	// W=9: A keeps 6+3 (4 does not fit after 6), root takes 4.
	res := e.EvalUniform(r, PolicyUpwards, 9)
	if res.Unserved != 0 || res.Loads[1] != 9 || res.Loads[0] != 4 {
		t.Fatalf("loads = %v unserved = %d, want A=9 root=4", res.Loads, res.Unserved)
	}
}

func TestPolicyEngineModalCapacities(t *testing.T) {
	tr := chainTree()
	r := ReplicasOf(tr)
	r.Set(2, 1) // B at mode 1, capacity 5
	r.Set(0, 2) // root at mode 2, capacity 10
	caps := func(m uint8) int { return []int{5, 10}[m-1] }
	e := NewEngine(tr)
	res := e.Eval(r, PolicyMultiple, caps)
	if res.Unserved != 0 || res.Loads[2] != 5 || res.Loads[0] != 2 {
		t.Fatalf("modal multiple loads = %v unserved = %d", res.Loads, res.Unserved)
	}
	if err := e.Validate(r, PolicyUpwards, caps); err != nil {
		t.Fatalf("modal upwards validation: %v", err)
	}
}

// The engine's scratch is reused across evaluations; interleaving
// policies and replica sets must not leak state.
func TestPolicyEngineReuseMatchesFresh(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		tr, r1 := randomInstance(seed)
		_, r2 := randomInstanceOn(tr, seed+1000)
		shared := NewEngine(tr)
		W := 1 + int(seed%9)
		for _, r := range []*Replicas{r1, r2, r1} {
			for _, p := range Policies() {
				got := shared.EvalUniform(r, p, W)
				want := NewEngine(tr).EvalUniform(r, p, W)
				if got.Unserved != want.Unserved {
					t.Fatalf("seed %d policy %v: reused unserved %d, fresh %d", seed, p, got.Unserved, want.Unserved)
				}
				for j := range want.Loads {
					if got.Loads[j] != want.Loads[j] {
						t.Fatalf("seed %d policy %v node %d: reused load %d, fresh %d",
							seed, p, j, got.Loads[j], want.Loads[j])
					}
				}
			}
		}
	}
}

func TestPolicyEvalPanics(t *testing.T) {
	tr := chainTree()
	e := NewEngine(tr)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("size mismatch", func() { e.Eval(NewReplicas(1), PolicyClosest, nil) })
	mustPanic("upwards without capacities", func() { e.Eval(ReplicasOf(tr), PolicyUpwards, nil) })
	mustPanic("multiple without capacities", func() { e.Eval(ReplicasOf(tr), PolicyMultiple, nil) })
	mustPanic("unknown policy", func() { e.EvalUniform(ReplicasOf(tr), Policy(9), 5) })
}

func TestFlowsPolicyAndValidatePolicyWrappers(t *testing.T) {
	tr := chainTree()
	r := ReplicasOf(tr)
	r.Set(2, 1)
	r.Set(0, 1)
	loads, unserved := FlowsPolicy(tr, r, PolicyMultiple, 5)
	if unserved != 0 || loads[2] != 5 || loads[0] != 2 {
		t.Fatalf("FlowsPolicy = %v, %d", loads, unserved)
	}
	if err := ValidatePolicy(tr, r, PolicyClosest, 5); err == nil {
		t.Fatal("ValidatePolicy(closest) accepted overload")
	}
	if err := ValidatePolicy(tr, r, PolicyUpwards, 5); err != nil {
		t.Fatalf("ValidatePolicy(upwards): %v", err)
	}
}
