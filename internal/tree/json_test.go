package tree

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"replicatree/internal/rng"
)

func TestTreeJSONRoundTrip(t *testing.T) {
	orig := MustGenerate(FatConfig(40), rng.New(5))
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() {
		t.Fatalf("size changed: %d -> %d", orig.N(), back.N())
	}
	for j := 0; j < orig.N(); j++ {
		if back.Parent(j) != orig.Parent(j) {
			t.Fatalf("parent[%d] changed", j)
		}
		if back.ClientSum(j) != orig.ClientSum(j) {
			t.Fatalf("clients[%d] changed", j)
		}
	}
}

func TestTreeWriteReadJSON(t *testing.T) {
	orig := paperTree(2)
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTreeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.N() != orig.N() || back.TotalRequests() != orig.TotalRequests() {
		t.Fatalf("round trip lost data: %v vs %v", back, orig)
	}
}

func TestTreeJSONRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"parents": [0], "clients": []}`,
		`{"parents": [-1, 7], "clients": []}`,
		`{"parents": [-1], "clients": [[-1]]}`,
		`{"parents": [-1, 2, 1], "clients": []}`,
	}
	for _, c := range cases {
		var tr Tree
		if err := json.Unmarshal([]byte(c), &tr); err == nil {
			t.Errorf("accepted %q", c)
		}
		if _, err := ReadTreeJSON(strings.NewReader(c)); err == nil {
			t.Errorf("ReadTreeJSON accepted %q", c)
		}
	}
}

func TestReplicasJSONRoundTrip(t *testing.T) {
	r := NewReplicas(6)
	r.Set(1, 2)
	r.Set(5, 1)
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Replicas
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(&back) {
		t.Fatalf("round trip changed set: %v -> %v", r, &back)
	}
}

func TestReadReplicasJSONSizeCheck(t *testing.T) {
	tr := paperTree(0) // 4 nodes
	ok := `{"modes": [0, 1, 0, 2]}`
	r, err := ReadReplicasJSON(strings.NewReader(ok), tr)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has(1) || r.Mode(3) != 2 {
		t.Fatalf("decoded set wrong: %v", r)
	}
	bad := `{"modes": [0, 1]}`
	if _, err := ReadReplicasJSON(strings.NewReader(bad), tr); err == nil {
		t.Fatal("size mismatch accepted")
	}
	if _, err := ReadReplicasJSON(strings.NewReader("xx"), tr); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestWriteDOT(t *testing.T) {
	tr := paperTree(2)
	existing := ReplicasOf(tr)
	existing.Set(2, 1)
	sol := ReplicasOf(tr)
	sol.Set(2, 1)
	sol.Set(0, 2)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, tr, existing, sol); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph", "gold", "palegreen", "2 req", "n1 -> n2"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	buf.Reset()
	if err := WriteDOT(&buf, tr, nil, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "filled") {
		t.Error("DOT with nil sets has filled nodes")
	}
}

// TestLoaderRejectsOverflowingDemand pins the int32 demand guard: the
// solvers keep per-node client sums in int32 tables, so the loader must
// reject any per-node sum (or single client) beyond MaxInt32 instead of
// letting the cast wrap.
func TestLoaderRejectsOverflowingDemand(t *testing.T) {
	for _, bad := range []string{
		`{"parents": [-1], "clients": [[9223372036854775807]]}`,
		`{"parents": [-1], "clients": [[2147483648]]}`,
		`{"parents": [-1], "clients": [[2147483647, 1]]}`,
		`{"parents": [-1, 0], "clients": [[1], [1073741824, 1073741824]]}`,
	} {
		if _, err := ReadTreeJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("overflowing demand accepted: %s", bad)
		}
		if _, _, err := ReadInstanceJSON(strings.NewReader(bad)); err == nil {
			t.Errorf("overflowing instance accepted: %s", bad)
		}
	}
	// The guard is a bound, not a blanket cap: MaxInt32 itself loads.
	ok := `{"parents": [-1], "clients": [[2147483646, 1]]}`
	if _, err := ReadTreeJSON(strings.NewReader(ok)); err != nil {
		t.Errorf("in-range demand rejected: %v", err)
	}
}
