package tree

import "fmt"

// NoBandwidthLimit marks a link without a bandwidth constraint.
const NoBandwidthLimit = -1

// Constraints augments a tree with the QoS and bandwidth model of
// Rehn-Sonigo, "Optimal Replica Placement in Tree Networks with QoS and
// Bandwidth Constraints and the Closest Allocation Policy" (arXiv
// 0706.3350):
//
//   - Each client may carry a QoS bound q: its requests must be served
//     within q hops. The client's own edge to its attachment node
//     counts, so a replica on the attachment node itself is 1 hop away
//     and q = 1 forces a replica there. Values q <= 0 mean "no bound"
//     (the default for every client).
//   - Each tree link j -> parent(j) may carry a bandwidth capacity: the
//     total number of requests crossing the link per time unit. A
//     negative capacity (NoBandwidthLimit, the default) means the link
//     is unconstrained; 0 is a real constraint forbidding any crossing
//     flow.
//
// A nil *Constraints everywhere in this repository means "no
// constraints"; an all-default Constraints value is equivalent.
// Constraints are attached to a specific tree only through their
// shapes; Validate checks the fit.
type Constraints struct {
	qos [][]int // per node, aligned with Tree.Clients(j); nil list = all unbounded
	bw  []int   // capacity of the link j -> parent(j); entry 0 (the root) is unused
	gen uint64  // mutation counter, advanced by every effective setter call
}

// NewConstraints returns an all-unbounded constraint set sized for t.
func NewConstraints(t *Tree) *Constraints {
	c := &Constraints{qos: make([][]int, t.N()), bw: make([]int, t.N())}
	for j := range c.bw {
		c.bw[j] = NoBandwidthLimit
	}
	return c
}

// Reset rebinds c to tree t as an all-unbounded set, reusing the
// per-node storage where capacities allow (the pooled-solver analogue
// of NewConstraints). It counts as a mutation: the generation advances.
func (c *Constraints) Reset(t *Tree) {
	n := t.N()
	if cap(c.qos) >= n {
		c.qos = c.qos[:n]
	} else {
		c.qos = make([][]int, n)
	}
	for j := range c.qos {
		c.qos[j] = c.qos[j][:0] // zero-length list = every client unbounded
	}
	c.bw = growScratch(c.bw, n)
	for j := range c.bw {
		c.bw[j] = NoBandwidthLimit
	}
	c.gen++
}

// N returns the number of nodes the constraints are defined over.
func (c *Constraints) N() int { return len(c.bw) }

// QoS returns the QoS bound of the k-th client of node j, or 0 when the
// client is unconstrained (including clients never mentioned in c).
func (c *Constraints) QoS(j, k int) int {
	if j < 0 || j >= len(c.qos) || k < 0 || k >= len(c.qos[j]) {
		return 0
	}
	if q := c.qos[j][k]; q > 0 {
		return q
	}
	return 0
}

// SetQoS bounds the k-th client of node j to q hops (q <= 0 removes the
// bound). The per-node list grows as needed; Validate checks it against
// the tree's actual client count.
func (c *Constraints) SetQoS(j, k, q int) {
	if j < 0 || j >= len(c.qos) || k < 0 {
		panic(fmt.Sprintf("tree: SetQoS(%d, %d) out of range", j, k))
	}
	for len(c.qos[j]) <= k {
		c.qos[j] = append(c.qos[j], 0)
	}
	if q < 0 {
		q = 0
	}
	if c.qos[j][k] != q {
		c.qos[j][k] = q
		c.gen++
	}
}

// SetUniformQoS bounds every client of t to q hops (q <= 0 removes all
// bounds).
func (c *Constraints) SetUniformQoS(t *Tree, q int) {
	for j := 0; j < t.N() && j < len(c.qos); j++ {
		for k := range t.Clients(j) {
			c.SetQoS(j, k, q)
		}
	}
}

// Bandwidth returns the capacity of the link j -> parent(j), or
// NoBandwidthLimit when the link is unconstrained. The root has no
// upward link; its entry is reported as unconstrained.
func (c *Constraints) Bandwidth(j int) int {
	if j <= 0 || j >= len(c.bw) || c.bw[j] < 0 {
		return NoBandwidthLimit
	}
	return c.bw[j]
}

// SetBandwidth caps the link j -> parent(j) at bw requests (negative
// removes the cap).
func (c *Constraints) SetBandwidth(j, bw int) {
	if j < 0 || j >= len(c.bw) {
		panic(fmt.Sprintf("tree: SetBandwidth(%d) out of range", j))
	}
	if bw < 0 {
		bw = NoBandwidthLimit
	}
	if c.bw[j] != bw {
		c.bw[j] = bw
		c.gen++
	}
}

// Generation returns a counter advanced by every setter call that
// changed a bound. Caches keyed on a constraint set (for example
// core.QoSSolver's per-node tables) compare it to detect out-of-band
// mutations between solves; a nil set reports generation 0.
func (c *Constraints) Generation() uint64 {
	if c == nil {
		return 0
	}
	return c.gen
}

// SetUniformBandwidth caps every non-root link at bw requests (negative
// removes every cap).
func (c *Constraints) SetUniformBandwidth(bw int) {
	for j := 1; j < len(c.bw); j++ {
		c.SetBandwidth(j, bw)
	}
}

// Bounded reports whether any QoS or bandwidth constraint is set.
func (c *Constraints) Bounded() bool {
	if c == nil {
		return false
	}
	for _, qs := range c.qos {
		for _, q := range qs {
			if q > 0 {
				return true
			}
		}
	}
	for j := 1; j < len(c.bw); j++ {
		if c.bw[j] >= 0 {
			return true
		}
	}
	return false
}

// Validate checks that c fits tree t: node counts match and no node
// carries QoS bounds for more clients than it has. A nil receiver is
// valid for every tree.
func (c *Constraints) Validate(t *Tree) error {
	if c == nil {
		return nil
	}
	if c.N() != t.N() {
		return fmt.Errorf("tree: constraints cover %d nodes, tree has %d", c.N(), t.N())
	}
	for j := range c.qos {
		if len(c.qos[j]) > len(t.Clients(j)) {
			return fmt.Errorf("tree: node %d carries QoS bounds for %d clients but has %d",
				j, len(c.qos[j]), len(t.Clients(j)))
		}
	}
	return nil
}

// Clone returns a deep copy. Cloning a nil set returns nil.
func (c *Constraints) Clone() *Constraints {
	if c == nil {
		return nil
	}
	out := &Constraints{
		qos: make([][]int, len(c.qos)),
		bw:  append([]int(nil), c.bw...),
	}
	for j := range c.qos {
		out.qos[j] = append([]int(nil), c.qos[j]...)
	}
	return out
}

// MinServerDepth returns the deepest point in the tree the k-th client
// of node j (at depth d) may still be served: a replica serving it must
// sit at depth >= the returned value. 0 means the client is effectively
// unconstrained (any ancestor, including the root, is acceptable).
func (c *Constraints) MinServerDepth(j, k, d int) int {
	q := c.QoS(j, k)
	if q <= 0 {
		return 0
	}
	if l := d + 1 - q; l > 0 {
		return l
	}
	return 0
}
