// Package textplot renders experiment series as ASCII line charts so
// the figure-regeneration harness can display the paper's plots directly
// in a terminal.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	Ys   []float64
}

// markers distinguishes overlapping series; series beyond the set reuse
// the last marker.
var markers = []byte{'*', '+', 'o', 'x', '#'}

// Plot renders the series against the shared x values into w as a
// width×height character grid with axis labels. All series must have
// len(xs) points.
func Plot(w io.Writer, title string, xs []float64, series []Series, width, height int) error {
	if len(xs) == 0 || len(series) == 0 {
		return fmt.Errorf("textplot: nothing to plot")
	}
	for _, s := range series {
		if len(s.Ys) != len(xs) {
			return fmt.Errorf("textplot: series %q has %d points, x axis has %d", s.Name, len(s.Ys), len(xs))
		}
	}
	if width < 16 || height < 4 {
		return fmt.Errorf("textplot: plot area %dx%d too small", width, height)
	}

	xmin, xmax := xs[0], xs[0]
	for _, x := range xs {
		xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
	}
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Ys {
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[min(si, len(markers)-1)]
		for i, y := range s.Ys {
			col := int(math.Round((xs[i] - xmin) / (xmax - xmin) * float64(width-1)))
			row := height - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(height-1)))
			grid[row][col] = m
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	for r, row := range grid {
		label := "        "
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3g", ymax)
		case height - 1:
			label = fmt.Sprintf("%8.3g", ymin)
		}
		fmt.Fprintf(&sb, "%s |%s|\n", label, row)
	}
	fmt.Fprintf(&sb, "%s %s\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%s %-*.4g%*.4g\n", strings.Repeat(" ", 9), width/2, xmin, width-width/2, xmax)
	legend := make([]string, len(series))
	for si, s := range series {
		legend[si] = fmt.Sprintf("%c %s", markers[min(si, len(markers)-1)], s.Name)
	}
	fmt.Fprintf(&sb, "%s %s\n", strings.Repeat(" ", 9), strings.Join(legend, "    "))
	_, err := io.WriteString(w, sb.String())
	return err
}
