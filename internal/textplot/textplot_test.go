package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlotBasic(t *testing.T) {
	var buf bytes.Buffer
	xs := []float64{0, 1, 2, 3, 4}
	err := Plot(&buf, "test figure", xs, []Series{
		{Name: "DP", Ys: []float64{0, 1, 2, 3, 4}},
		{Name: "GR", Ys: []float64{4, 3, 2, 1, 0}},
	}, 40, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"test figure", "* DP", "+ GR", "*", "+"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 1+10+3 {
		t.Fatalf("got %d lines, want 14:\n%s", len(lines), out)
	}
}

func TestPlotConstantSeries(t *testing.T) {
	var buf bytes.Buffer
	err := Plot(&buf, "flat", []float64{1, 2}, []Series{{Name: "s", Ys: []float64{5, 5}}}, 20, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "*") {
		t.Fatal("flat series not drawn")
	}
}

func TestPlotErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Plot(&buf, "t", nil, []Series{{Name: "s"}}, 40, 10); err == nil {
		t.Error("empty x axis accepted")
	}
	if err := Plot(&buf, "t", []float64{1}, nil, 40, 10); err == nil {
		t.Error("no series accepted")
	}
	if err := Plot(&buf, "t", []float64{1, 2}, []Series{{Name: "s", Ys: []float64{1}}}, 40, 10); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Plot(&buf, "t", []float64{1, 2}, []Series{{Name: "s", Ys: []float64{1, 2}}}, 2, 2); err == nil {
		t.Error("tiny plot area accepted")
	}
}

func TestPlotExtremeValuesStayInGrid(t *testing.T) {
	var buf bytes.Buffer
	err := Plot(&buf, "range", []float64{-5, 0, 5}, []Series{
		{Name: "a", Ys: []float64{-100, 0, 100}},
	}, 30, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if len(line) > 9+1+30+1 {
			t.Fatalf("line overflows grid: %q", line)
		}
	}
}
