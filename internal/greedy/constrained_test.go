package greedy

import (
	"errors"
	"math/rand"
	"testing"

	"replicatree/internal/tree"
)

func TestErrInfeasibleSentinel(t *testing.T) {
	var err error = &InfeasibleError{Node: 3, Demand: 12, Cap: 10}
	if !errors.Is(err, ErrInfeasible) {
		t.Fatal("InfeasibleError does not wrap ErrInfeasible")
	}
	var ie *InfeasibleError
	if !errors.As(err, &ie) || ie.Node != 3 {
		t.Fatal("errors.As lost the detail")
	}

	// The overloaded-clients path of MinReplicas.
	b := tree.NewBuilder()
	b.AddClient(b.AddNode(b.Root()), 50)
	_, err = MinReplicas(b.MustBuild(), 10)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("MinReplicas error %v does not wrap ErrInfeasible", err)
	}
	// The policy fallback path: a single client above W is infeasible
	// under Upwards.
	_, err = MinReplicasPolicy(b.MustBuild(), 10, tree.PolicyUpwards)
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("MinReplicasPolicy error %v does not wrap ErrInfeasible", err)
	}
	// Real errors must NOT register as infeasibility.
	if _, err = MinReplicas(b.MustBuild(), 0); errors.Is(err, ErrInfeasible) {
		t.Fatal("a non-positive capacity is an argument error, not infeasibility")
	}
	if _, err = MinReplicasPolicy(b.MustBuild(), 10, tree.Policy(9)); errors.Is(err, ErrInfeasible) {
		t.Fatal("an unknown policy is an argument error, not infeasibility")
	}
}

// randomConstrained draws a random tree with random constraints.
func randomConstrained(rng *rand.Rand, maxNodes int) (*tree.Tree, *tree.Constraints) {
	n := 2 + rng.Intn(maxNodes-1)
	b := tree.NewBuilder()
	nodes := []int{b.Root()}
	for len(nodes) < n {
		nodes = append(nodes, b.AddNode(nodes[rng.Intn(len(nodes))]))
	}
	for _, j := range nodes {
		for k := rng.Intn(3); k > 0; k-- {
			b.AddClient(j, rng.Intn(6))
		}
	}
	t := b.MustBuild()
	c := tree.NewConstraints(t)
	for j := 0; j < t.N(); j++ {
		for k := range t.Clients(j) {
			if rng.Intn(2) == 0 {
				c.SetQoS(j, k, 1+rng.Intn(4))
			}
		}
		if j > 0 && rng.Intn(3) == 0 {
			c.SetBandwidth(j, rng.Intn(12))
		}
	}
	return t, c
}

// TestMinReplicasConstrainedValid checks on random instances that the
// constrained greedy either proves infeasibility or returns a placement
// the constrained validation accepts.
func TestMinReplicasConstrainedValid(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	feasible := 0
	for trial := 0; trial < 500; trial++ {
		tr, c := randomConstrained(rng, 30)
		W := 1 + rng.Intn(12)
		r, err := MinReplicasConstrained(tr, W, c)
		if err != nil {
			if !errors.Is(err, ErrInfeasible) {
				t.Fatalf("trial %d: real error %v", trial, err)
			}
			continue
		}
		feasible++
		if err := tree.ValidateConstrained(tr, r, tree.PolicyClosest, W, c); err != nil {
			t.Fatalf("trial %d: invalid constrained greedy placement: %v", trial, err)
		}
	}
	if feasible == 0 {
		t.Fatal("no feasible instance drawn; the test checked nothing")
	}
}

// TestMinReplicasConstrainedUnboundedMatchesPlain checks that an
// all-unbounded constraint set reproduces the plain greedy exactly.
func TestMinReplicasConstrainedUnboundedMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 200; trial++ {
		tr, _ := randomConstrained(rng, 40)
		W := 1 + rng.Intn(12)
		plain, errP := MinReplicas(tr, W)
		cons, errC := MinReplicasConstrained(tr, W, tree.NewConstraints(tr))
		if (errP == nil) != (errC == nil) {
			t.Fatalf("trial %d: plain err %v, constrained err %v", trial, errP, errC)
		}
		if errP != nil {
			continue
		}
		if !plain.Equal(cons) {
			t.Fatalf("trial %d: unbounded constraints changed the placement (%v != %v)", trial, plain, cons)
		}
	}
}

// TestMinReplicasPolicyConstrainedValid checks every policy's
// constrained placement validates, and that relaxed policies never need
// more servers than the constrained closest solution.
func TestMinReplicasPolicyConstrainedValid(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 200; trial++ {
		tr, c := randomConstrained(rng, 20)
		W := 1 + rng.Intn(12)
		closestCount := -1
		for _, p := range tree.Policies() {
			r, err := MinReplicasPolicyConstrained(tr, W, p, c)
			if err != nil {
				if !errors.Is(err, ErrInfeasible) {
					t.Fatalf("trial %d policy %v: real error %v", trial, p, err)
				}
				continue
			}
			if err := tree.ValidateConstrained(tr, r, p, W, c); err != nil {
				t.Fatalf("trial %d policy %v: invalid placement: %v", trial, p, err)
			}
			if p == tree.PolicyClosest {
				closestCount = r.Count()
			} else if p == tree.PolicyMultiple && closestCount >= 0 && r.Count() > closestCount {
				// A closest-valid placement is always multiple-valid and
				// the multiple certifier is exact, so pruning from the
				// closest seed can only shrink it. (No such guarantee
				// for Upwards: its conservative certifier may reject
				// the seed and prune from the full placement instead.)
				t.Fatalf("trial %d policy %v: %d servers, closest needs only %d",
					trial, p, r.Count(), closestCount)
			}
		}
	}
}
