// Package greedy implements the replica placement baseline the paper
// compares against: the greedy algorithm of Wu, Lin and Liu [19] for the
// MinCost-NoPre problem (minimal number of servers under the closest
// policy), and the paper's power-adapted variant of it used as "GR" in
// Experiment 3 (Section 5.2).
package greedy

import (
	"fmt"
	"sort"

	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/tree"
)

// ErrInfeasible is the sentinel wrapped by every error this package
// returns for an instance that no placement can serve. Callers must
// distinguish it from real errors (invalid trees or arguments) with
// errors.Is: only ErrInfeasible means "the instance itself is
// unsolvable". It wraps the shared tree.ErrInfeasible, so checks
// against the core package's identical sentinel match too.
var ErrInfeasible = fmt.Errorf("greedy: %w", tree.ErrInfeasible)

// InfeasibleError reports an instance that no placement can serve: the
// clients attached to one node demand more than a single server's
// capacity, and the closest policy forces them onto a single server
// (under the upwards policy, a single client demanding more than one
// server's capacity — the multiple policy splits such demands). It
// wraps ErrInfeasible.
type InfeasibleError struct {
	Node   int
	Demand int
	Cap    int
}

func (e *InfeasibleError) Error() string {
	return fmt.Sprintf("greedy: clients of node %d demand %d > capacity %d; no valid placement exists",
		e.Node, e.Demand, e.Cap)
}

// Unwrap makes errors.Is(err, ErrInfeasible) hold for InfeasibleError.
func (e *InfeasibleError) Unwrap() error { return ErrInfeasible }

// MinReplicas returns a replica set of minimal cardinality serving every
// client with capacity W under the closest policy, with every replica
// set to mode 1. It runs in O(N log N): a post-order lazy pass that
// equips the heaviest child branches of a node only when the traversing
// flow would exceed W.
//
// Optimality follows from an exchange argument: all requests traversing
// a node are served by the same next server, so whenever the flow at j
// exceeds W some branches below j must be cut; a replica anywhere inside
// the branch of child c absorbs at most the flow leaving c (with
// equality when placed on c itself), hence cutting the heaviest child
// branches first is never worse. The result is cross-checked against the
// dynamic program in the core package's tests.
func MinReplicas(t *tree.Tree, W int) (*tree.Replicas, error) {
	if W <= 0 {
		return nil, fmt.Errorf("greedy: non-positive capacity %d", W)
	}
	r := tree.ReplicasOf(t)
	up := make([]int, t.N()) // flow leaving each node, given placements so far
	for _, j := range t.PostOrder() {
		own := t.ClientSum(j)
		if own > W {
			return nil, &InfeasibleError{Node: j, Demand: own, Cap: W}
		}
		f := own
		kids := t.Children(j)
		contrib := make([]int, 0, len(kids))
		order := make([]int, 0, len(kids))
		for _, c := range kids {
			f += up[c]
			if up[c] > 0 {
				contrib = append(contrib, up[c])
				order = append(order, c)
			}
		}
		if f > W {
			// Equip the heaviest contributing children until the
			// residual flow fits; ties broken by node id for
			// determinism.
			idx := make([]int, len(order))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool {
				if contrib[idx[a]] != contrib[idx[b]] {
					return contrib[idx[a]] > contrib[idx[b]]
				}
				return order[idx[a]] < order[idx[b]]
			})
			for _, i := range idx {
				if f <= W {
					break
				}
				c := order[i]
				r.Set(c, 1)
				f -= up[c]
				up[c] = 0
			}
		}
		up[j] = f
	}
	if up[t.Root()] > 0 {
		r.Set(t.Root(), 1)
	}
	return r, nil
}

// MinReplicasPolicy returns a valid single-capacity placement under the
// chosen access policy, with every replica set to mode 1. For
// tree.PolicyClosest it is exactly MinReplicas and therefore optimal.
// For the upwards and multiple policies — where feasible placements are
// a superset of the closest ones, and Upwards placement is NP-hard —
// it seeds from the closest solution when one exists (falling back to
// equipping every node) and then greedily prunes servers in increasing
// order of absorbed load while the placement stays valid under the
// policy's flow evaluation. The result is always validated; it is a
// baseline, not an optimum (the core package's brute force is the
// reference on small trees).
func MinReplicasPolicy(t *tree.Tree, W int, p tree.Policy) (*tree.Replicas, error) {
	return MinReplicasPolicyConstrained(t, W, p, nil)
}

// SweepResult is the outcome of the paper's power-adapted greedy: the
// best placement found across the capacity sweep, with load-determined
// modes assigned, and its cost and power.
type SweepResult struct {
	Solution *tree.Replicas
	Cost     float64
	Power    float64
	// Capacity is the sweep value W' whose greedy placement won.
	Capacity int
	// Found is false when no capacity in the sweep yields a solution
	// within the cost bound.
	Found bool
}

// PowerSweep is the paper's "GR" of Experiment 3: run MinReplicas for
// every integer capacity W' between W_1 and W_M, operate each server of
// each resulting placement at its load-determined mode (a server with at
// most W_1 requests runs in mode 1, and so on), price the placement
// against the pre-existing deployment with the modal cost model, and
// keep the solution of minimal power among those with cost at most
// bound. Ties prefer lower cost, then lower W'.
func PowerSweep(t *tree.Tree, existing *tree.Replicas, pm power.Model, cm cost.Modal, bound float64) (SweepResult, error) {
	return PowerSweepPolicy(t, existing, pm, cm, bound, tree.PolicyClosest)
}

// PowerSweepPolicy is PowerSweep under an arbitrary access policy: the
// capacity sweep places with MinReplicasPolicy, modes are assigned with
// the policy-aware load-determined rule (power.Model.AssignModesEngine),
// and — under the relaxed policies, whose routing depends on
// capacities — candidates that do not re-validate under their per-mode
// capacities are skipped.
func PowerSweepPolicy(t *tree.Tree, existing *tree.Replicas, pm power.Model, cm cost.Modal, bound float64, p tree.Policy) (SweepResult, error) {
	if !p.Valid() {
		return SweepResult{}, fmt.Errorf("greedy: unknown access policy %v", p)
	}
	if existing == nil {
		existing = tree.NewReplicas(t.N())
	}
	if err := pm.Validate(); err != nil {
		return SweepResult{}, err
	}
	if err := cm.Validate(); err != nil {
		return SweepResult{}, err
	}
	if cm.M() != pm.M() {
		return SweepResult{}, fmt.Errorf("greedy: cost model has %d modes, power model %d", cm.M(), pm.M())
	}
	e := tree.NewEngine(t)
	best := SweepResult{}
	for capW := pm.Caps[0]; capW <= pm.MaxCap(); capW++ {
		sol, err := MinReplicasPolicy(t, capW, p)
		if err != nil {
			continue // this capacity cannot serve the instance
		}
		if err := pm.AssignModesEngine(e, sol, p); err != nil {
			if p == tree.PolicyClosest {
				// Closest loads are bounded by capW <= W_M, so this
				// cannot happen for a solution MinReplicas accepted.
				return SweepResult{}, err
			}
			continue // mode capacities cannot carry this routing
		}
		c, err := cm.OfReplicas(sol, existing)
		if err != nil {
			return SweepResult{}, err
		}
		if c > bound {
			continue
		}
		pw := pm.OfReplicas(sol)
		if better(pw, c, capW, best) {
			best = SweepResult{Solution: sol, Cost: c, Power: pw, Capacity: capW, Found: true}
		}
	}
	return best, nil
}

func better(p, c float64, capW int, cur SweepResult) bool {
	if !cur.Found {
		return true
	}
	if p != cur.Power {
		return p < cur.Power
	}
	if c != cur.Cost {
		return c < cur.Cost
	}
	return capW < cur.Capacity
}
