package greedy

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"replicatree/internal/cost"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// fig1Tree is the paper's Figure 1 topology: root with an optional
// client, child A, grandchildren B (4 requests) and C (7 requests).
func fig1Tree(rootReq int) *tree.Tree {
	b := tree.NewBuilder()
	a := b.AddNode(b.Root())
	bb := b.AddNode(a)
	cc := b.AddNode(a)
	b.AddClient(bb, 4)
	b.AddClient(cc, 7)
	if rootReq > 0 {
		b.AddClient(b.Root(), rootReq)
	}
	return b.MustBuild()
}

func TestMinReplicasFigure1(t *testing.T) {
	// W=10. Total 13 (root 2): two servers suffice and are necessary.
	tr := fig1Tree(2)
	r, err := MinReplicas(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 2 {
		t.Fatalf("count = %d, want 2", r.Count())
	}
	if err := tree.ValidateUniform(tr, r, 10); err != nil {
		t.Fatal(err)
	}
	// Root demand 4: total 15, still two servers.
	tr = fig1Tree(4)
	r, err = MinReplicas(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 2 {
		t.Fatalf("count = %d, want 2", r.Count())
	}
	if err := tree.ValidateUniform(tr, r, 10); err != nil {
		t.Fatal(err)
	}
}

func TestMinReplicasNoRequests(t *testing.T) {
	b := tree.NewBuilder()
	b.AddNode(0)
	tr := b.MustBuild()
	r, err := MinReplicas(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 0 {
		t.Fatalf("count = %d for a tree without clients", r.Count())
	}
}

func TestMinReplicasSingleServerSuffices(t *testing.T) {
	tr := fig1Tree(2)
	r, err := MinReplicas(tr, 13)
	if err != nil {
		t.Fatal(err)
	}
	if r.Count() != 1 || !r.Has(tr.Root()) {
		t.Fatalf("W=13 solution = %v, want root only", r)
	}
}

func TestMinReplicasInfeasible(t *testing.T) {
	b := tree.NewBuilder()
	b.AddClient(0, 11)
	tr := b.MustBuild()
	_, err := MinReplicas(tr, 10)
	var ie *InfeasibleError
	if !errors.As(err, &ie) {
		t.Fatalf("error = %v, want InfeasibleError", err)
	}
	if ie.Node != 0 || ie.Demand != 11 || ie.Cap != 10 {
		t.Fatalf("InfeasibleError = %+v", ie)
	}
	if ie.Error() == "" {
		t.Fatal("empty message")
	}
}

func TestMinReplicasBadCapacity(t *testing.T) {
	tr := fig1Tree(0)
	if _, err := MinReplicas(tr, 0); err == nil {
		t.Fatal("W=0 accepted")
	}
}

func TestMinReplicasEquipsHeaviestBranch(t *testing.T) {
	// Root has two children: X carries 8, Y carries 3; root client 1.
	// W=10: flow at root would be 12, equipping X (the heaviest)
	// leaves 4 <= 10, so one child replica plus the root.
	b := tree.NewBuilder()
	x := b.AddNode(0)
	y := b.AddNode(0)
	b.AddClient(x, 8)
	b.AddClient(y, 3)
	b.AddClient(0, 1)
	tr := b.MustBuild()
	r, err := MinReplicas(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Has(x) || r.Has(y) {
		t.Fatalf("solution = %v, want X equipped, Y not", r)
	}
	if r.Count() != 2 {
		t.Fatalf("count = %d, want 2", r.Count())
	}
}

func TestMinReplicasDeterministic(t *testing.T) {
	cfg := tree.FatConfig(150)
	tr := tree.MustGenerate(cfg, rng.New(77))
	a, err := MinReplicas(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinReplicas(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("two runs differ")
	}
}

// bruteMinCount exhaustively finds the minimal number of servers for
// small trees by enumerating all subsets.
func bruteMinCount(tr *tree.Tree, W int) int {
	n := tr.N()
	best := -1
	for mask := 0; mask < 1<<n; mask++ {
		r := tree.ReplicasOf(tr)
		cnt := 0
		for j := 0; j < n; j++ {
			if mask&(1<<j) != 0 {
				r.Set(j, 1)
				cnt++
			}
		}
		if best >= 0 && cnt >= best {
			continue
		}
		if tree.ValidateUniform(tr, r, W) == nil {
			best = cnt
		}
	}
	return best
}

func TestQuickMinReplicasOptimal(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 1)
		cfg := tree.GenConfig{
			Nodes:       1 + src.IntN(11),
			MinChildren: 1 + src.IntN(2),
			MaxChildren: 3,
			ClientProb:  0.7,
			ReqMin:      1,
			ReqMax:      6,
		}
		tr := tree.MustGenerate(cfg, src)
		W := 4 + src.IntN(8)
		want := bruteMinCount(tr, W)
		got, err := MinReplicas(tr, W)
		if want < 0 {
			return err != nil
		}
		if err != nil {
			return false
		}
		if tree.ValidateUniform(tr, got, W) != nil {
			return false
		}
		return got.Count() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Property: solutions are always valid, and larger capacities never need
// more servers.
func TestQuickMinReplicasMonotoneInW(t *testing.T) {
	f := func(seed uint64) bool {
		src := rng.Derive(seed, 2)
		tr := tree.MustGenerate(tree.FatConfig(1+src.IntN(60)), src)
		W := 6 + src.IntN(6)
		a, errA := MinReplicas(tr, W)
		b, errB := MinReplicas(tr, W+3)
		if errA != nil {
			return true // a fortiori nothing to compare
		}
		if tree.ValidateUniform(tr, a, W) != nil || errB != nil {
			return false
		}
		return b.Count() <= a.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// fig2Tree is the paper's Figure 2 topology with modes {7, 10}.
func fig2Tree(rootReq int) *tree.Tree {
	b := tree.NewBuilder()
	a := b.AddNode(b.Root())
	bb := b.AddNode(a)
	cc := b.AddNode(a)
	b.AddClient(bb, 3)
	b.AddClient(cc, 7)
	if rootReq > 0 {
		b.AddClient(b.Root(), rootReq)
	}
	return b.MustBuild()
}

func TestPowerSweepFigure2(t *testing.T) {
	pm := power.MustNew([]int{7, 10}, 10, 2)
	cm := cost.UniformModal(2, 0, 0, 0)
	tr := fig2Tree(4)
	res, err := PowerSweep(tr, tree.ReplicasOf(tr), pm, cm, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no solution found")
	}
	if err := tree.Validate(tr, res.Solution, func(m uint8) int { return pm.Cap(int(m)) }); err != nil {
		t.Fatal(err)
	}
	// The best greedy solution uses capacity 7: servers at C (7 req)
	// and root (3+4=7 req), both mode 1: power 2*(10+49) = 118.
	if math.Abs(res.Power-118) > 1e-9 {
		t.Fatalf("power = %v, want 118", res.Power)
	}
	if res.Capacity != 7 {
		t.Fatalf("winning capacity = %d, want 7", res.Capacity)
	}
}

func TestPowerSweepRespectsBound(t *testing.T) {
	pm := power.MustNew([]int{7, 10}, 10, 2)
	cm := cost.UniformModal(2, 1, 0, 0) // each new server costs 2 total
	tr := fig2Tree(4)
	// Two-server solutions cost 4; bound 3 leaves only one-server
	// solutions (a mode-2 server at the root serves 14 > 10: none).
	res, err := PowerSweep(tr, tree.ReplicasOf(tr), pm, cm, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatalf("found %v under impossible bound", res.Solution)
	}
	res, err = PowerSweep(tr, tree.ReplicasOf(tr), pm, cm, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Cost > 4 {
		t.Fatalf("bound 4: found=%v cost=%v", res.Found, res.Cost)
	}
}

func TestPowerSweepCountsReuse(t *testing.T) {
	pm := power.MustNew([]int{7, 10}, 10, 2)
	cm := cost.UniformModal(2, 10, 0, 0) // creation is expensive
	tr := fig2Tree(4)
	existing := tree.ReplicasOf(tr)
	existing.Set(3, 1) // C pre-exists at mode 1
	existing.Set(0, 1) // root pre-exists at mode 1
	// GR's capacity-7 solution {C, root} reuses both: cost 2.
	res, err := PowerSweep(tr, existing, pm, cm, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no solution within bound despite full reuse")
	}
	if res.Solution.Reused(existing) != 2 {
		t.Fatalf("reused = %d, want 2", res.Solution.Reused(existing))
	}
}

func TestPowerSweepModelValidation(t *testing.T) {
	tr := fig2Tree(0)
	pm := power.MustNew([]int{7, 10}, 10, 2)
	if _, err := PowerSweep(tr, tree.ReplicasOf(tr), pm, cost.UniformModal(3, 0, 0, 0), 1); err == nil {
		t.Fatal("mode count mismatch accepted")
	}
	if _, err := PowerSweep(tr, tree.ReplicasOf(tr), power.Model{}, cost.UniformModal(2, 0, 0, 0), 1); err == nil {
		t.Fatal("invalid power model accepted")
	}
	bad := cost.Modal{Create: []float64{-1, 0}, Delete: []float64{0, 0}, Change: [][]float64{{0, 0}, {0, 0}}}
	if _, err := PowerSweep(tr, tree.ReplicasOf(tr), pm, bad, 1); err == nil {
		t.Fatal("invalid cost model accepted")
	}
}

func TestPowerSweepInfeasibleInstance(t *testing.T) {
	b := tree.NewBuilder()
	b.AddClient(0, 50)
	tr := b.MustBuild()
	pm := power.MustNew([]int{5, 10}, 0, 2)
	res, err := PowerSweep(tr, tree.ReplicasOf(tr), pm, cost.UniformModal(2, 0, 0, 0), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Fatal("found a solution for an infeasible instance")
	}
}

func TestMinReplicasPolicyClosestDelegates(t *testing.T) {
	src := rng.New(41)
	tr := tree.MustGenerate(tree.FatConfig(60), src)
	a, err := MinReplicas(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MinReplicasPolicy(tr, 10, tree.PolicyClosest)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("MinReplicasPolicy(closest) differs from MinReplicas")
	}
}

func TestMinReplicasPolicyValidAndNoWorse(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		tr := tree.MustGenerate(tree.HighConfig(40), rng.Derive(seed, 3))
		e := tree.NewEngine(tr)
		const W = 8
		closest, err := MinReplicas(tr, W)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []tree.Policy{tree.PolicyUpwards, tree.PolicyMultiple} {
			sol, err := MinReplicasPolicy(tr, W, p)
			if err != nil {
				t.Fatalf("seed %d policy %v: %v", seed, p, err)
			}
			if verr := e.ValidateUniform(sol, p, W); verr != nil {
				t.Fatalf("seed %d policy %v: invalid placement: %v", seed, p, verr)
			}
			if sol.Count() > closest.Count() {
				t.Fatalf("seed %d policy %v: %d servers, closest needs only %d",
					seed, p, sol.Count(), closest.Count())
			}
		}
	}
}

func TestMinReplicasPolicyMultipleServesOversizedClients(t *testing.T) {
	// One 12-request client: closest and upwards cannot serve it with
	// W=5, multiple splits it along the chain of three nodes.
	b := tree.NewBuilder()
	n1 := b.AddNode(b.Root())
	n2 := b.AddNode(n1)
	b.AddClient(n2, 12)
	tr := b.MustBuild()
	if _, err := MinReplicasPolicy(tr, 5, tree.PolicyClosest); err == nil {
		t.Fatal("closest served a 12-request client at W=5")
	}
	if _, err := MinReplicasPolicy(tr, 5, tree.PolicyUpwards); err == nil {
		t.Fatal("upwards served a 12-request client at W=5")
	}
	sol, err := MinReplicasPolicy(tr, 5, tree.PolicyMultiple)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Count() != 3 {
		t.Fatalf("multiple used %d servers, want all 3 on the chain", sol.Count())
	}
	if _, err := MinReplicasPolicy(tr, 3, tree.PolicyMultiple); err == nil {
		t.Fatal("W=3 cannot serve 12 requests on a 3-node chain")
	}
}

func TestMinReplicasPolicyRejectsBadArgs(t *testing.T) {
	tr := tree.MustGenerate(tree.FatConfig(10), rng.New(1))
	if _, err := MinReplicasPolicy(tr, 0, tree.PolicyMultiple); err == nil {
		t.Fatal("W=0 accepted")
	}
	if _, err := MinReplicasPolicy(tr, 5, tree.Policy(9)); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestPowerSweepPolicyClosestDelegates(t *testing.T) {
	src := rng.New(17)
	tr := tree.MustGenerate(tree.PowerConfig(30), src)
	existing, err := tree.RandomReplicas(tr, 4, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	a, err := PowerSweep(tr, existing, pm, cm, 40)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerSweepPolicy(tr, existing, pm, cm, 40, tree.PolicyClosest)
	if err != nil {
		t.Fatal(err)
	}
	if a.Found != b.Found || a.Cost != b.Cost || a.Power != b.Power || a.Capacity != b.Capacity {
		t.Fatalf("PowerSweepPolicy(closest) = %+v, PowerSweep = %+v", b, a)
	}
}

func TestPowerSweepPolicyValidSolutions(t *testing.T) {
	src := rng.New(23)
	tr := tree.MustGenerate(tree.PowerConfig(30), src)
	existing, err := tree.RandomReplicas(tr, 4, 2, src)
	if err != nil {
		t.Fatal(err)
	}
	pm := power.MustNew([]int{5, 10}, 12.5, 3)
	cm := cost.UniformModal(2, 0.1, 0.01, 0.001)
	e := tree.NewEngine(tr)
	for _, p := range tree.Policies() {
		res, err := PowerSweepPolicy(tr, existing, pm, cm, 1e9, p)
		if err != nil {
			t.Fatalf("policy %v: %v", p, err)
		}
		if !res.Found {
			t.Fatalf("policy %v: nothing found with an unbounded budget", p)
		}
		if verr := e.Validate(res.Solution, p, func(m uint8) int { return pm.Cap(int(m)) }); verr != nil {
			t.Fatalf("policy %v: invalid sweep solution: %v", p, verr)
		}
	}
}
