package greedy

import (
	"testing"

	"replicatree/internal/failure"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

func TestCoverageAndHedge(t *testing.T) {
	// Chain root(0) - 1 - 2 with clients at 2.
	b := tree.NewBuilder()
	n1 := b.AddNode(b.Root())
	n2 := b.AddNode(n1)
	b.AddClient(n2, 3)
	tr := b.MustBuild()

	r := tree.ReplicasOf(tr)
	r.Set(n1, 1)
	if !CoverageOK(tr, r, 1) || CoverageOK(tr, r, 2) {
		t.Fatal("coverage of a single mid-chain server misjudged")
	}
	if added := HedgePlacement(tr, r, 2); added != 1 {
		t.Fatalf("hedge to K=2 added %d servers, want 1", added)
	}
	if !r.Has(n2) {
		t.Fatal("hedge should prefer the deepest unequipped ancestor (the client's node)")
	}
	if !CoverageOK(tr, r, 2) {
		t.Fatal("hedged placement still deficient")
	}
	// K beyond the path length saturates at full-path coverage.
	if HedgePlacement(tr, r, 5) != 1 || !r.Has(0) || !CoverageOK(tr, r, 5) {
		t.Fatal("saturating hedge should equip the whole path")
	}
	if HedgePlacement(tr, r, 5) != 0 {
		t.Fatal("saturated hedge must be idempotent")
	}
}

// TestHedgePreservesValidity pins the invariance argument: hedging a
// minimal closest-valid placement never overloads any server, for any
// K, on random trees.
func TestHedgePreservesValidity(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		src := rng.Derive(404, int(seed))
		tr := tree.MustGenerate(tree.HighConfig(70), src)
		W := 8 + src.IntN(20)
		for K := 2; K <= 4; K++ {
			r, err := MinReplicasHedged(tr, W, K)
			if err != nil {
				continue // instance infeasible at this W
			}
			if !CoverageOK(tr, r, K) {
				t.Fatalf("seed %d K=%d: hedged placement misses the coverage bar", seed, K)
			}
			loads, unserved := tree.Flows(tr, r)
			if unserved > 0 {
				t.Fatalf("seed %d K=%d: hedged placement leaves %d unserved", seed, K, unserved)
			}
			for j, l := range loads {
				if l > W {
					t.Fatalf("seed %d K=%d: hedged server %d carries %d > W=%d", seed, K, j, l, W)
				}
			}
		}
	}
}

// TestHedgeLowersExpectedUnserved ties hedging to the availability
// model: under the upwards policy, K=2 coverage can only lower (never
// raise) the expected unserved demand at any uniform up-probability.
func TestHedgeLowersExpectedUnserved(t *testing.T) {
	for seed := uint64(0); seed < 20; seed++ {
		src := rng.Derive(405, int(seed))
		tr := tree.MustGenerate(tree.HighConfig(50), src)
		base, err := MinReplicas(tr, 10)
		if err != nil {
			continue
		}
		hedged := base.Clone()
		HedgePlacement(tr, hedged, 2)

		up := make([]float64, tr.N())
		for j := range up {
			up[j] = failure.UpProbability(40, 8)
		}
		eb, err := failure.ExpectedUnserved(tr, base, up, tree.PolicyUpwards)
		if err != nil {
			t.Fatal(err)
		}
		eh, err := failure.ExpectedUnserved(tr, hedged, up, tree.PolicyUpwards)
		if err != nil {
			t.Fatal(err)
		}
		if eh > eb+1e-9 {
			t.Fatalf("seed %d: hedging raised expected unserved from %v to %v", seed, eb, eh)
		}
	}
}
