package greedy

import (
	"fmt"
	"sort"

	"replicatree/internal/tree"
)

// MinReplicasConstrained is MinReplicas under QoS and bandwidth
// constraints (arXiv 0706.3350): a valid single-capacity closest-policy
// placement, every replica at mode 1. The post-order pass keeps the
// unconstrained rule — equip the heaviest child branches when the
// traversing flow exceeds W — and additionally equips any node the
// climbing flow cannot pass: because some contributing client's QoS
// range ends there, or because the upward link's bandwidth is too
// small. A nil constraint set is exactly MinReplicas and therefore
// optimal; with constraints the result is a valid baseline but not
// necessarily minimal (core.MinReplicasQoS is the exact polynomial
// algorithm; the tests compare the two).
func MinReplicasConstrained(t *tree.Tree, W int, c *tree.Constraints) (*tree.Replicas, error) {
	if c == nil {
		return MinReplicas(t, W)
	}
	if W <= 0 {
		return nil, fmt.Errorf("greedy: non-positive capacity %d", W)
	}
	if err := c.Validate(t); err != nil {
		return nil, err
	}
	r := tree.ReplicasOf(t)
	n := t.N()
	up := make([]int, n)  // flow leaving each node, given placements so far
	upL := make([]int, n) // tightest min-server-depth among the flow's clients
	for _, j := range t.PostOrder() {
		D := t.Depth(j)
		own := t.ClientSum(j)
		if own > W {
			return nil, &InfeasibleError{Node: j, Demand: own, Cap: W}
		}
		ownL := 0
		for k, dem := range t.Clients(j) {
			if dem > 0 {
				if l := c.MinServerDepth(j, k, D); l > ownL {
					ownL = l
				}
			}
		}
		f := own
		kids := t.Children(j)
		contrib := make([]int, 0, len(kids))
		order := make([]int, 0, len(kids))
		for _, ch := range kids {
			f += up[ch]
			if up[ch] > 0 {
				contrib = append(contrib, up[ch])
				order = append(order, ch)
			}
		}
		if f > W {
			// Equip the heaviest contributing children until the
			// residual flow fits; ties broken by node id.
			idx := make([]int, len(order))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool {
				if contrib[idx[a]] != contrib[idx[b]] {
					return contrib[idx[a]] > contrib[idx[b]]
				}
				return order[idx[a]] < order[idx[b]]
			})
			for _, i := range idx {
				if f <= W {
					break
				}
				ch := order[i]
				r.Set(ch, 1)
				f -= up[ch]
				up[ch] = 0
			}
		}
		L := ownL
		for _, ch := range order {
			if up[ch] > 0 && upL[ch] > L {
				L = upL[ch]
			}
		}
		// The residual flow may climb only if every contributing client
		// tolerates a server above j (L < D, with any server at depth
		// >= L acceptable) and the upward link carries it.
		bw := c.Bandwidth(j)
		if f > 0 && (j == t.Root() || L >= D || (bw >= 0 && f > bw)) {
			r.Set(j, 1)
			up[j], upL[j] = 0, 0
		} else {
			up[j], upL[j] = f, L
		}
	}
	// The pass enforces every constraint locally, so the placement is
	// valid by construction; re-check as a guard against drift.
	if err := tree.ValidateConstrained(t, r, tree.PolicyClosest, W, c); err != nil {
		return nil, fmt.Errorf("greedy: constrained placement failed validation (bug): %w", err)
	}
	return r, nil
}

// MinReplicasPolicyConstrained is MinReplicasPolicy under QoS and
// bandwidth constraints: for tree.PolicyClosest it is exactly
// MinReplicasConstrained; for the relaxed policies it seeds from the
// constrained closest solution (falling back to equipping every node)
// and greedily prunes servers while the placement stays valid under the
// policy's constrained flow evaluation.
func MinReplicasPolicyConstrained(t *tree.Tree, W int, p tree.Policy, c *tree.Constraints) (*tree.Replicas, error) {
	if p == tree.PolicyClosest {
		return MinReplicasConstrained(t, W, c)
	}
	if !p.Valid() {
		return nil, fmt.Errorf("greedy: unknown access policy %v", p)
	}
	if W <= 0 {
		return nil, fmt.Errorf("greedy: non-positive capacity %d", W)
	}
	if err := c.Validate(t); err != nil {
		return nil, err
	}
	if p == tree.PolicyUpwards {
		// A client's requests stay together under Upwards, so one
		// demand above W dooms every placement.
		for j := 0; j < t.N(); j++ {
			for _, d := range t.Clients(j) {
				if d > W {
					return nil, &InfeasibleError{Node: j, Demand: d, Cap: W}
				}
			}
		}
	}
	e := tree.NewEngine(t)
	r, err := MinReplicasConstrained(t, W, c)
	if err != nil || e.ValidateUniformConstrained(r, p, W, c) != nil {
		// No constrained closest solution (or, under Upwards, one the
		// best-fit certifier cannot re-certify): start from the full
		// placement, which serves the most requests any placement can.
		r = tree.ReplicasOf(t)
		for j := 0; j < t.N(); j++ {
			r.Set(j, 1)
		}
		if err := e.ValidateUniformConstrained(r, p, W, c); err != nil {
			return nil, fmt.Errorf("greedy: no valid placement under the %v policy with capacity %d: %w: %w",
				p, W, ErrInfeasible, err)
		}
	}
	pruneReplicasConstrained(e, r, p, W, c)
	return r, nil
}

// pruneReplicasConstrained repeatedly removes the server whose removal
// keeps r valid under the constrained evaluation, trying lightest
// observed loads first (ties by node id), until no single server can be
// dropped.
func pruneReplicasConstrained(e *tree.Engine, r *tree.Replicas, p tree.Policy, W int, c *tree.Constraints) {
	t := e.Tree()
	order := make([]int, 0, t.N())
	for {
		res := e.EvalUniformConstrained(r, p, W, c)
		order = order[:0]
		for j := 0; j < t.N(); j++ {
			if r.Has(j) {
				order = append(order, j)
			}
		}
		loads := append([]int(nil), res.Loads...)
		sort.Slice(order, func(a, b int) bool {
			if loads[order[a]] != loads[order[b]] {
				return loads[order[a]] < loads[order[b]]
			}
			return order[a] < order[b]
		})
		removed := false
		for _, j := range order {
			r.Unset(j)
			if e.ValidateUniformConstrained(r, p, W, c) == nil {
				removed = true
				break
			}
			r.Set(j, 1)
		}
		if !removed {
			return
		}
	}
}
