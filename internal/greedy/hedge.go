package greedy

import "replicatree/internal/tree"

// This file implements availability hedging: padding a placement so
// every client keeps K candidate servers on its path to the root, in
// the spirit of fault-tolerant facility location (each client assigned
// to several distinct facilities so any single failure leaves a backup
// in place). Under the closest policy only the nearest equipped
// ancestor serves — the extra servers are standby capacity that the
// failure package's masked routing (or a repair re-solve) falls back
// to — while under the upwards and multiple policies the redundant
// ancestors absorb climbing demand directly.
//
// Hedging never invalidates a closest-valid placement: equipping an
// extra node only diverts demand away from servers above it, so every
// old server's load shrinks, and the new server's load is the flow that
// previously traversed its node, which was bounded by the (<= W) load
// of the ancestor serving it.

// Coverage returns, per node, the number of equipped nodes on the path
// from the node (inclusive) to the root: the redundancy available to
// the node's clients. O(N), top-down.
func Coverage(t *tree.Tree, r *tree.Replicas) []int {
	cov := make([]int, t.N())
	post := t.PostOrder()
	for i := len(post) - 1; i >= 0; i-- {
		j := post[i]
		if p := t.Parent(j); p >= 0 {
			cov[j] = cov[p]
		}
		if r.Has(j) {
			cov[j]++
		}
	}
	return cov
}

// CoverageOK reports whether every client-bearing node has at least
// min(K, depth+1) equipped nodes on its root path — the most coverage
// a path of that length can hold, so short paths near the root are
// never counted as deficient.
func CoverageOK(t *tree.Tree, r *tree.Replicas, K int) bool {
	if K <= 1 {
		return true
	}
	cov := Coverage(t, r)
	for j := 0; j < t.N(); j++ {
		if t.ClientSum(j) == 0 {
			continue
		}
		want := min(K, t.Depth(j)+1)
		if cov[j] < want {
			return false
		}
	}
	return true
}

// HedgePlacement equips additional nodes (at mode 1) until CoverageOK
// holds for K, preferring the deepest unequipped ancestors of each
// deficient client: deep servers shield the client from the most
// single-node failures above them and absorb the least foreign
// traffic. Returns the number of servers added. Deterministic: clients
// are processed in ascending node order.
func HedgePlacement(t *tree.Tree, r *tree.Replicas, K int) int {
	if K <= 1 {
		return 0
	}
	cov := Coverage(t, r)
	added := 0
	for j := 0; j < t.N(); j++ {
		if t.ClientSum(j) == 0 {
			continue
		}
		want := min(K, t.Depth(j)+1)
		if cov[j] >= want {
			continue
		}
		before := added
		// Walk the path root-ward, equipping unequipped nodes deepest
		// first.
		for n := j; n >= 0 && cov[j] < want; n = t.Parent(n) {
			if !r.Has(n) {
				r.Set(n, 1)
				added++
				cov[j]++
			}
		}
		if cov[j] < want {
			// Unreachable: a path of depth+1 nodes fully equipped holds
			// exactly want servers.
			panic("greedy: hedge walk could not reach its coverage target")
		}
		// Refresh coverage for the remaining clients: the added servers
		// cover other subtrees hanging off the walked path too.
		if added > before {
			cov = Coverage(t, r)
		}
	}
	return added
}

// MinReplicasHedged is MinReplicas followed by HedgePlacement: a
// minimal closest-valid placement padded to K-redundant coverage. The
// result stays valid for capacity W (see the invariance argument in
// the file comment); it is the "hedged greedy" strategy the
// availability experiment compares against the exact DP.
func MinReplicasHedged(t *tree.Tree, W, K int) (*tree.Replicas, error) {
	r, err := MinReplicas(t, W)
	if err != nil {
		return nil, err
	}
	HedgePlacement(t, r, K)
	return r, nil
}
