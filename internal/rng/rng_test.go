package rng

import (
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("streams diverged at %d: %d vs %d", i, got, want)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/100 equal draws", same)
	}
}

func TestDeriveIndependent(t *testing.T) {
	a := Derive(7, 0)
	b := Derive(7, 1)
	c := Derive(7, 0)
	var av, bv, cv [64]uint64
	for i := range av {
		av[i], bv[i], cv[i] = a.Uint64(), b.Uint64(), c.Uint64()
	}
	if av != cv {
		t.Fatal("Derive(7,0) not deterministic")
	}
	if av == bv {
		t.Fatal("Derive(7,0) and Derive(7,1) identical")
	}
}

func TestBetweenBounds(t *testing.T) {
	s := New(3)
	seen := map[int]bool{}
	for i := 0; i < 10000; i++ {
		v := s.Between(2, 5)
		if v < 2 || v > 5 {
			t.Fatalf("Between(2,5) = %d out of range", v)
		}
		seen[v] = true
	}
	for v := 2; v <= 5; v++ {
		if !seen[v] {
			t.Errorf("Between(2,5) never produced %d", v)
		}
	}
}

func TestBetweenSingleton(t *testing.T) {
	s := New(4)
	for i := 0; i < 10; i++ {
		if v := s.Between(9, 9); v != 9 {
			t.Fatalf("Between(9,9) = %d", v)
		}
	}
}

func TestBetweenPanicsOnBadRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Between(5,2) did not panic")
		}
	}()
	New(1).Between(5, 2)
}

func TestSampleDistinct(t *testing.T) {
	s := New(5)
	for trial := 0; trial < 100; trial++ {
		k := s.IntN(10)
		got := s.Sample(10, k)
		if len(got) != k {
			t.Fatalf("Sample(10,%d) returned %d values", k, len(got))
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= 10 {
				t.Fatalf("Sample value %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("Sample returned duplicate %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestBoolProbability(t *testing.T) {
	s := New(6)
	n := 20000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) hit rate %.3f, want ~0.3", frac)
	}
}

func TestBoolExtremes(t *testing.T) {
	s := New(7)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1.0) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(8)
	p := s.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if seen[v] {
			t.Fatalf("Perm duplicate %d", v)
		}
		seen[v] = true
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	s := New(9)
	check := func(seed uint64) bool {
		src := Derive(seed, 0)
		n := 1 + src.IntN(20)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = src.IntN(5)
		}
		count := map[int]int{}
		for _, v := range xs {
			count[v]++
		}
		s.Shuffle(xs)
		for _, v := range xs {
			count[v]--
		}
		for _, c := range count {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSplitMix64Scrambles(t *testing.T) {
	// Consecutive inputs must produce very different outputs.
	a := splitMix64(1)
	b := splitMix64(2)
	if a == b {
		t.Fatal("splitMix64(1) == splitMix64(2)")
	}
	if splitMix64(1) != a {
		t.Fatal("splitMix64 not deterministic")
	}
}
