// Package rng provides small deterministic random-number helpers used by
// the tree generators and the experiment harness.
//
// Every consumer of randomness in this repository receives an explicit
// *rng.Source seeded from a caller-provided seed, so that experiments are
// reproducible run-to-run and independent of goroutine scheduling: the
// harness derives one independent stream per tree with Derive.
package rng

import "math/rand/v2"

// Source is a deterministic random stream. The zero value is not usable;
// construct one with New or Derive.
type Source struct {
	r *rand.Rand
}

// New returns a stream seeded with seed.
func New(seed uint64) *Source {
	return &Source{r: rand.New(rand.NewPCG(seed, splitMix64(seed)))}
}

// Derive returns an independent stream for sub-experiment i of the stream
// seeded with seed. Streams for distinct (seed, i) pairs are decorrelated
// by a SplitMix64 scramble of the pair.
func Derive(seed uint64, i int) *Source {
	s1 := splitMix64(seed + 0x9e3779b97f4a7c15*uint64(i+1))
	s2 := splitMix64(s1)
	return &Source{r: rand.New(rand.NewPCG(s1, s2))}
}

// splitMix64 is the standard SplitMix64 finalizer, used to decorrelate
// nearby seeds.
func splitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// IntN returns a uniform int in [0, n). It panics if n <= 0.
func (s *Source) IntN(n int) int { return s.r.IntN(n) }

// Between returns a uniform int in [lo, hi] inclusive. It panics if hi < lo.
func (s *Source) Between(lo, hi int) int {
	if hi < lo {
		panic("rng: Between with hi < lo")
	}
	return lo + s.r.IntN(hi-lo+1)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 { return s.r.Float64() }

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool { return s.r.Float64() < p }

// Uint64 returns a uniform 64-bit value.
func (s *Source) Uint64() uint64 { return s.r.Uint64() }

// Perm returns a random permutation of [0, n).
func (s *Source) Perm(n int) []int { return s.r.Perm(n) }

// Sample returns k distinct values drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (s *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	p := s.r.Perm(n)
	return p[:k]
}

// Shuffle permutes xs in place.
func (s *Source) Shuffle(xs []int) {
	s.r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}
