package replicatree_test

import (
	"fmt"
	"math"

	"replicatree"
)

// ExampleMinCost reproduces the paper's Figure 1: with two requests at
// the root, reusing the pre-existing server at B is optimal.
func ExampleMinCost() {
	b := replicatree.NewBuilder()
	a := b.AddNode(b.Root())
	nodeB := b.AddNode(a)
	nodeC := b.AddNode(a)
	b.AddClient(nodeB, 4)
	b.AddClient(nodeC, 7)
	b.AddClient(b.Root(), 2)
	t := b.MustBuild()

	existing := replicatree.ReplicasOf(t)
	existing.Set(nodeB, 1)

	res, err := replicatree.MinCost(t, existing, 10,
		replicatree.SimpleCost{Create: 0.1, Delete: 0.01})
	if err != nil {
		panic(err)
	}
	fmt.Printf("cost %.2f servers %v reused %d\n", res.Cost, res.Placement.Nodes(), res.Reused)
	// Output: cost 2.10 servers [0 2] reused 1
}

// ExamplePowerSolver_Best reproduces the paper's Figure 2: with four
// root requests, letting three requests traverse node A saves power.
func ExamplePowerSolver_Best() {
	b := replicatree.NewBuilder()
	a := b.AddNode(b.Root())
	nodeB := b.AddNode(a)
	nodeC := b.AddNode(a)
	b.AddClient(nodeB, 3)
	b.AddClient(nodeC, 7)
	b.AddClient(b.Root(), 4)
	t := b.MustBuild()

	pm, _ := replicatree.NewPowerModel([]int{7, 10}, 10, 2) // P = 10 + W²
	solver, err := replicatree.SolvePower(replicatree.PowerProblem{
		Tree:  t,
		Power: pm,
		Cost:  replicatree.UniformModalCost(2, 0, 0, 0),
	})
	if err != nil {
		panic(err)
	}
	res, _ := solver.Best(math.Inf(1))
	fmt.Printf("power %.0f with %d servers\n", res.Power, res.Placement.Count())
	// Output: power 118 with 2 servers
}

// ExampleGreedyMinReplicas shows the classical minimal-count baseline.
func ExampleGreedyMinReplicas() {
	t, err := replicatree.FromParents(
		[]int{-1, 0, 0},        // root with two children
		[][]int{{2}, {8}, {3}}, // client demands
	)
	if err != nil {
		panic(err)
	}
	sol, err := replicatree.GreedyMinReplicas(t, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%d servers at %v\n", sol.Count(), sol.Nodes())
	// Output: 2 servers at [0 1]
}

// ExampleFlows inspects where requests are served under the closest
// policy.
func ExampleFlows() {
	t, _ := replicatree.FromParents([]int{-1, 0}, [][]int{{5}, {4}})
	r := replicatree.ReplicasOf(t)
	r.Set(0, 1) // only the root is equipped
	loads, unserved := replicatree.Flows(t, r)
	fmt.Printf("root load %d, unserved %d\n", loads[0], unserved)
	// Output: root load 9, unserved 0
}
