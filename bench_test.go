// Benchmarks regenerating every figure of the paper's evaluation
// (Section 5), plus micro-benchmarks of the individual solvers and the
// ablation of the local-search heuristic against the optimal DP.
//
// To keep `go test -bench=.` tractable, the figure benchmarks run the
// exact paper workloads at a reduced tree count per iteration; the
// cmd/replicasim binary regenerates the figures at full scale (it takes
// seconds — three orders of magnitude faster than the timings the paper
// reports for its own implementation).
package replicatree_test

import (
	"math"
	"testing"

	"replicatree"
	"replicatree/internal/core"
	"replicatree/internal/exper"
	"replicatree/internal/heuristic"
	"replicatree/internal/tree"
)

// --- Figures 4-7: update strategies (Experiments 1 and 2) ---

func benchExp1(b *testing.B, high bool) {
	cfg := exper.DefaultExp1(high, 10)
	cfg.Trees = 20
	var last *exper.Exp1Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exper.RunExp1(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.AvgGain, "avg-extra-reuse")
	b.ReportMetric(float64(last.MaxGain), "max-extra-reuse")
}

// BenchmarkFig4 regenerates Figure 4 (Experiment 1, fat trees).
func BenchmarkFig4(b *testing.B) { benchExp1(b, false) }

// BenchmarkFig6 regenerates Figure 6 (Experiment 1, high trees).
func BenchmarkFig6(b *testing.B) { benchExp1(b, true) }

func benchExp2(b *testing.B, high bool) {
	cfg := exper.DefaultExp2(high)
	cfg.Trees = 10
	var last *exper.Exp2Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exper.RunExp2(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	final := len(last.CumDP) - 1
	b.ReportMetric(last.CumDP[final]-last.CumGR[final], "cum-reuse-gain")
}

// BenchmarkFig5 regenerates Figure 5 (Experiment 2, fat trees).
func BenchmarkFig5(b *testing.B) { benchExp2(b, false) }

// BenchmarkFig7 regenerates Figure 7 (Experiment 2, high trees).
func BenchmarkFig7(b *testing.B) { benchExp2(b, true) }

// --- Figures 8-11: power minimisation (Experiment 3) ---

func benchExp3(b *testing.B, cfg exper.Exp3Config) {
	cfg.Trees = 10
	var last *exper.Exp3Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exper.RunExp3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	// Report the paper's headline: the greedy's worst average power
	// excess across bounds.
	worst := 0.0
	for _, p := range last.Points {
		if p.GRExcessPct > worst {
			worst = p.GRExcessPct
		}
	}
	b.ReportMetric(worst, "max-GR-excess-%")
}

// BenchmarkFig8 regenerates Figure 8 (Experiment 3, fat trees).
func BenchmarkFig8(b *testing.B) { benchExp3(b, exper.DefaultExp3()) }

// BenchmarkFig9 regenerates Figure 9 (Experiment 3, no pre-existing).
func BenchmarkFig9(b *testing.B) { benchExp3(b, exper.Exp3Fig9()) }

// BenchmarkFig10 regenerates Figure 10 (Experiment 3, high trees).
func BenchmarkFig10(b *testing.B) { benchExp3(b, exper.Exp3Fig10()) }

// BenchmarkFig11 regenerates Figure 11 (Experiment 3, costly updates).
func BenchmarkFig11(b *testing.B) { benchExp3(b, exper.Exp3Fig11()) }

// --- Section 5.2 scalability claims ---

// BenchmarkScaleMinCost500 times MinCost-WithPre on the paper's largest
// instance: 500 nodes, 125 pre-existing servers (paper: ~30 minutes).
func BenchmarkScaleMinCost500(b *testing.B) {
	src := replicatree.NewRNG(exper.DefaultSeed)
	t := tree.MustGenerate(tree.FatConfig(500), src)
	existing, err := tree.RandomReplicas(t, 125, 1, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinCost(t, existing, 10, exper.Exp1Cost()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalePowerNoPre150 times the power DP without pre-existing
// servers on 150 nodes (the paper ran 300 nodes in one hour; 300 nodes
// take a few seconds here — see cmd/replicasim -scale -full).
func BenchmarkScalePowerNoPre150(b *testing.B) {
	t := tree.MustGenerate(tree.PowerConfig(150), replicatree.NewRNG(exper.DefaultSeed))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolvePower(core.PowerProblem{
			Tree: t, Power: exper.Exp3Power(), Cost: exper.Exp3Cost(),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalePowerWithPre50 times the power DP with 8 pre-existing
// servers on 50 nodes (the paper ran 70 nodes / 10 pre-existing in
// about one hour).
func BenchmarkScalePowerWithPre50(b *testing.B) {
	src := replicatree.NewRNG(exper.DefaultSeed)
	t := tree.MustGenerate(tree.PowerConfig(50), src)
	existing, err := tree.RandomReplicas(t, 8, 2, src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolvePower(core.PowerProblem{
			Tree: t, Existing: existing, Power: exper.Exp3Power(), Cost: exper.Exp3Cost(),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Solver micro-benchmarks ---

// BenchmarkMinCostFatTree times one MinCost-WithPre solve on the
// Experiment 1 workload (100 nodes, 25 pre-existing).
func BenchmarkMinCostFatTree(b *testing.B) {
	src := replicatree.NewRNG(1)
	t := tree.MustGenerate(tree.FatConfig(100), src)
	existing, _ := tree.RandomReplicas(t, 25, 1, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinCost(t, existing, 10, exper.Exp1Cost()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMinCostPathTree exercises the DP's worst shape: a deep path
// where subtree tables stay large through every merge.
func BenchmarkMinCostPathTree(b *testing.B) {
	bd := tree.NewBuilder()
	node := bd.Root()
	src := replicatree.NewRNG(2)
	for i := 0; i < 100; i++ {
		if src.Bool(0.5) {
			bd.AddClient(node, src.Between(1, 6))
		}
		node = bd.AddNode(node)
	}
	t := bd.MustBuild()
	existing, _ := tree.RandomReplicas(t, 25, 1, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinCost(t, existing, 10, exper.Exp1Cost()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyMinReplicas times the O(N log N) baseline at N=1000.
func BenchmarkGreedyMinReplicas(b *testing.B) {
	t := tree.MustGenerate(tree.FatConfig(1000), replicatree.NewRNG(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replicatree.GreedyMinReplicas(t, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerSolverExp3Tree times one full power DP on the
// Experiment 3 workload (50 nodes, 5 pre-existing, 2 modes).
func BenchmarkPowerSolverExp3Tree(b *testing.B) {
	src := replicatree.NewRNG(4)
	t := tree.MustGenerate(tree.PowerConfig(50), src)
	existing, _ := tree.RandomReplicas(t, 5, 2, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolvePower(core.PowerProblem{
			Tree: t, Existing: existing, Power: exper.Exp3Power(), Cost: exper.Exp3Cost(),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Reusable solver micro-benchmarks (arena steady state) ---
//
// The *SolverReuse benchmarks measure the arena-backed solver objects
// after two warm-up solves (the first sizes the buffers, the second
// fits them): every iteration must report 0 allocs/op (the CI
// zero-alloc gate fails otherwise), the same contract
// BenchmarkFlows/BenchmarkValidate enforce for the flow engine. Each
// iteration calls Invalidate first so the whole table set is rebuilt —
// without it the incremental solver would detect the unchanged inputs
// and skip every table (that path is BenchmarkIncrementalResolve's).

// BenchmarkMinCostSolverReuse times steady-state MinCost solves through
// a reused solver on the Experiment 1 workload (compare with the
// cold-solver BenchmarkMinCostFatTree).
func BenchmarkMinCostSolverReuse(b *testing.B) {
	src := replicatree.NewRNG(1)
	t := tree.MustGenerate(tree.FatConfig(100), src)
	existing, _ := tree.RandomReplicas(t, 25, 1, src)
	solver := core.NewMinCostSolver(t)
	dst := tree.ReplicasOf(t)
	for warm := 0; warm < 2; warm++ {
		if _, err := solver.SolveInto(existing, 10, exper.Exp1Cost(), dst); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		solver.Invalidate()
		if _, err := solver.SolveInto(existing, 10, exper.Exp1Cost(), dst); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPowerSolverReuse times steady-state power solves (full DP
// plus one unbounded reconstruction) through a reused PowerDP on the
// Experiment 3 workload (compare with BenchmarkPowerSolverExp3Tree).
func BenchmarkPowerSolverReuse(b *testing.B) {
	src := replicatree.NewRNG(4)
	t := tree.MustGenerate(tree.PowerConfig(50), src)
	existing, _ := tree.RandomReplicas(t, 5, 2, src)
	dp := core.NewPowerDP(t)
	prob := core.PowerProblem{Existing: existing, Power: exper.Exp3Power(), Cost: exper.Exp3Cost()}
	dst := tree.ReplicasOf(t)
	for warm := 0; warm < 2; warm++ {
		if _, err := dp.Solve(prob); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dp.Invalidate()
		solver, err := dp.Solve(prob)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := solver.BestInto(math.Inf(1), dst); !ok {
			b.Fatal("no solution")
		}
	}
}

// BenchmarkQoSSolverReuse times steady-state constrained-counting
// solves through a reused QoSSolver on the 100-node fat workload with a
// 4-hop QoS bound (compare with BenchmarkMinReplicasQoS).
func BenchmarkQoSSolverReuse(b *testing.B) {
	tr := tree.MustGenerate(tree.FatConfig(100), replicatree.NewRNG(exper.DefaultSeed))
	cons := tree.NewConstraints(tr)
	cons.SetUniformQoS(tr, 4)
	solver := core.NewQoSSolver(tr)
	dst := tree.ReplicasOf(tr)
	for warm := 0; warm < 2; warm++ {
		if _, err := solver.Solve(10, cons, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		solver.Invalidate()
		if _, err := solver.Solve(10, cons, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Incremental re-solve micro-benchmarks (dirty ancestor chains) ---

// BenchmarkIncrementalResolve times one drift step — mutate a handful
// of client demands through SetDemand and re-solve with a warm solver —
// for all three DP solvers. Only the dirty ancestor chains are
// recomputed, so a step costs O(changed clients × depth) table work
// instead of O(N); compare each sub-benchmark with its full-rebuild
// *SolverReuse counterpart. Every iteration must report 0 allocs/op
// (the CI zero-alloc gate covers these benchmarks too).
func BenchmarkIncrementalResolve(b *testing.B) {
	pickClients := func(t *tree.Tree, k int) []int {
		var nodes []int
		for j := 0; j < t.N() && len(nodes) < k; j++ {
			if len(t.Clients(j)) > 0 {
				nodes = append(nodes, j)
			}
		}
		return nodes
	}

	b.Run("mincost/drift3", func(b *testing.B) {
		src := replicatree.NewRNG(1)
		t := tree.MustGenerate(tree.FatConfig(100), src)
		existing, _ := tree.RandomReplicas(t, 25, 1, src)
		nodes := pickClients(t, 3)
		solver := core.NewMinCostSolver(t)
		dst := tree.ReplicasOf(t)
		for warm := 0; warm < 2; warm++ {
			if _, err := solver.SolveInto(existing, 10, exper.Exp1Cost(), dst); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, j := range nodes {
				t.SetDemand(j, 0, 1+i%2)
			}
			if _, err := solver.SolveInto(existing, 10, exper.Exp1Cost(), dst); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("qos/drift3", func(b *testing.B) {
		tr := tree.MustGenerate(tree.FatConfig(100), replicatree.NewRNG(exper.DefaultSeed))
		cons := tree.NewConstraints(tr)
		cons.SetUniformQoS(tr, 4)
		nodes := pickClients(tr, 3)
		solver := core.NewQoSSolver(tr)
		dst := tree.ReplicasOf(tr)
		for warm := 0; warm < 2; warm++ {
			if _, err := solver.Solve(10, cons, dst); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, j := range nodes {
				tr.SetDemand(j, 0, 1+i%2)
			}
			if _, err := solver.Solve(10, cons, dst); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("power/drift3", func(b *testing.B) {
		src := replicatree.NewRNG(4)
		t := tree.MustGenerate(tree.PowerConfig(50), src)
		existing, _ := tree.RandomReplicas(t, 5, 2, src)
		nodes := pickClients(t, 3)
		dp := core.NewPowerDP(t)
		prob := core.PowerProblem{Existing: existing, Power: exper.Exp3Power(), Cost: exper.Exp3Cost()}
		dst := tree.ReplicasOf(t)
		// Warm through the drift cycle itself (both demand parities),
		// so the measured steps re-visit table states whose retained
		// root-block fronts have already grown to size.
		for warm := 0; warm < 4; warm++ {
			for _, j := range nodes {
				t.SetDemand(j, 0, 1+warm%2)
			}
			if _, err := dp.Solve(prob); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, j := range nodes {
				t.SetDemand(j, 0, 1+i%2)
			}
			solver, err := dp.Solve(prob)
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := solver.BestInto(math.Inf(1), dst); !ok {
				b.Fatal("no solution")
			}
		}
	})

}

// BenchmarkRootScanReuse isolates the power DP's delta-priced root
// scan: a warm PowerDP re-solving under alternating cost models. The
// cost model invalidates no subtree table, so every iteration pays
// exactly one full root re-price (plus the Pareto merge of the block
// fronts) and no merge work at all — SolveStats shows Recomputed == 0
// with RootCellsRepriced == the root-table size. Must report 0
// allocs/op (CI zero-alloc gate).
func BenchmarkRootScanReuse(b *testing.B) {
	src := replicatree.NewRNG(4)
	t := tree.MustGenerate(tree.PowerConfig(50), src)
	existing, _ := tree.RandomReplicas(t, 5, 2, src)
	dp := core.NewPowerDP(t)
	alt := exper.Exp3Cost()
	for i := range alt.Create {
		alt.Create[i] += 0.25
	}
	probs := [2]core.PowerProblem{
		{Existing: existing, Power: exper.Exp3Power(), Cost: exper.Exp3Cost()},
		{Existing: existing, Power: exper.Exp3Power(), Cost: alt},
	}
	// An even warm count leaves the solver on probs[1], so iteration 0
	// (probs[0]) swaps the cost model — every measured iteration prices
	// the full root table rather than hitting the skip-scan path.
	for warm := 0; warm < 4; warm++ {
		if _, err := dp.Solve(probs[warm%2]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dp.Solve(probs[i%2]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPooledSweep times the per-worker solver-pool pattern the
// sweep runners use: one warm solver rebound across a cycle of
// same-shaped trees via Reset. Once the retained buffers cover every
// tree in the cycle, a Reset + full solve allocates nothing — the
// steady state par.MapPooled buys RunExp1-RunExp3 and RunQoSCompare
// (CI zero-alloc gate).
func BenchmarkPooledSweep(b *testing.B) {
	const cycle = 4

	b.Run("mincost", func(b *testing.B) {
		src := replicatree.NewRNG(11)
		trees := make([]*tree.Tree, cycle)
		existing := make([]*tree.Replicas, cycle)
		for i := range trees {
			trees[i] = tree.MustGenerate(tree.FatConfig(100), src)
			existing[i], _ = tree.RandomReplicas(trees[i], 25, 1, src)
		}
		solver := core.NewMinCostSolver(trees[0])
		dst := tree.ReplicasOf(trees[0])
		for warm := 0; warm < 2*cycle; warm++ {
			solver.Reset(trees[warm%cycle])
			if _, err := solver.SolveInto(existing[warm%cycle], 10, exper.Exp1Cost(), dst); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			solver.Reset(trees[i%cycle])
			if _, err := solver.SolveInto(existing[i%cycle], 10, exper.Exp1Cost(), dst); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("qos", func(b *testing.B) {
		src := replicatree.NewRNG(12)
		trees := make([]*tree.Tree, cycle)
		cons := make([]*tree.Constraints, cycle)
		for i := range trees {
			trees[i] = tree.MustGenerate(tree.FatConfig(100), src)
			cons[i] = tree.NewConstraints(trees[i])
			cons[i].SetUniformQoS(trees[i], 4)
		}
		solver := core.NewQoSSolver(trees[0])
		dst := tree.ReplicasOf(trees[0])
		for warm := 0; warm < 2*cycle; warm++ {
			solver.Reset(trees[warm%cycle])
			if _, err := solver.Solve(10, cons[warm%cycle], dst); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			solver.Reset(trees[i%cycle])
			if _, err := solver.Solve(10, cons[i%cycle], dst); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("power", func(b *testing.B) {
		src := replicatree.NewRNG(13)
		trees := make([]*tree.Tree, cycle)
		probs := make([]core.PowerProblem, cycle)
		for i := range trees {
			trees[i] = tree.MustGenerate(tree.PowerConfig(30), src)
			ex, _ := tree.RandomReplicas(trees[i], 4, 2, src)
			probs[i] = core.PowerProblem{Existing: ex, Power: exper.Exp3Power(), Cost: exper.Exp3Cost()}
		}
		dp := core.NewPowerDP(trees[0])
		dst := tree.ReplicasOf(trees[0])
		for warm := 0; warm < 2*cycle; warm++ {
			dp.Reset(trees[warm%cycle])
			if _, err := dp.Solve(probs[warm%cycle]); err != nil {
				b.Fatal(err)
			}
		}
		b.ResetTimer()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dp.Reset(trees[i%cycle])
			solver, err := dp.Solve(probs[i%cycle])
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := solver.BestInto(math.Inf(1), dst); !ok {
				b.Fatal("no solution")
			}
		}
	})
}

// BenchmarkExp2DriftStep times one full Experiment 2 drift step on a
// shared tree: redraw 10% of the clients, re-solve taking the previous
// placement as the pre-existing set (placement diffs dirty chains
// too). Unlike the IncrementalResolve family this one is not under the
// zero-alloc gate: every step's new placement reshapes the ancestor
// tables, so retained buffers may still grow for many iterations
// before the high-water mark covers every placement shape.
func BenchmarkExp2DriftStep(b *testing.B) {
	src := replicatree.NewRNG(7)
	cfg := tree.FatConfig(100)
	t := tree.MustGenerate(cfg, src)
	solver := core.NewMinCostSolver(t)
	existing := tree.ReplicasOf(t)
	spare := tree.ReplicasOf(t)
	res, err := solver.SolveInto(existing, 10, exper.Exp1Cost(), spare)
	if err != nil {
		b.Fatal(err)
	}
	existing, spare = res.Placement, existing
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree.DriftRequests(t, cfg, 0.1, src)
		res, err := solver.SolveInto(existing, 10, exper.Exp1Cost(), spare)
		if err != nil {
			b.Fatal(err)
		}
		existing, spare = res.Placement, existing
	}
}

// BenchmarkTreeGeneration times the workload generator itself.
func BenchmarkTreeGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tree.MustGenerate(tree.FatConfig(100), replicatree.DeriveRNG(5, i))
	}
}

// --- Ablation: heuristic vs optimal DP ---

// BenchmarkAblationHeuristic times the local-search heuristic on the
// Experiment 3 workload and reports its power gap against the optimum
// computed once outside the loop. This quantifies the paper's
// future-work trade-off: near-optimal power at a fraction of the DP's
// runtime (compare with BenchmarkPowerSolverExp3Tree).
func BenchmarkAblationHeuristic(b *testing.B) {
	src := replicatree.NewRNG(6)
	t := tree.MustGenerate(tree.PowerConfig(50), src)
	existing, _ := tree.RandomReplicas(t, 5, 2, src)
	pm, cm := exper.Exp3Power(), exper.Exp3Cost()
	solver, err := core.SolvePower(core.PowerProblem{Tree: t, Existing: existing, Power: pm, Cost: cm})
	if err != nil {
		b.Fatal(err)
	}
	opt := solver.MinPower()
	var last replicatree.HeuristicResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = replicatree.HeuristicPowerAware(t, existing, pm, cm, math.Inf(1), replicatree.HeuristicOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	if !last.Found {
		b.Fatal("heuristic found nothing")
	}
	b.ReportMetric((last.Power/opt.Power-1)*100, "gap-vs-optimal-%")
}

// BenchmarkAblationUpdateHeuristic times the MinCost update heuristic
// (paper §6's "faster but sub-optimal update heuristics") on the
// Experiment 1 workload and reports its cost gap against the optimal
// DP, computed once outside the loop (compare runtimes with
// BenchmarkMinCostFatTree).
func BenchmarkAblationUpdateHeuristic(b *testing.B) {
	src := replicatree.NewRNG(8)
	t := tree.MustGenerate(tree.FatConfig(100), src)
	existing, _ := tree.RandomReplicas(t, 25, 1, src)
	c := exper.Exp1Cost()
	opt, err := core.MinCost(t, existing, 10, c)
	if err != nil {
		b.Fatal(err)
	}
	var last heuristic.UpdateResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		last, err = heuristic.UpdateAware(t, existing, 10, c, heuristic.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	if !last.Found {
		b.Fatal("heuristic found nothing")
	}
	b.ReportMetric((last.Cost/opt.Cost-1)*100, "gap-vs-optimal-%")
}

// BenchmarkAblationPaperReference times the line-by-line transcription
// of the paper's Algorithms 1-4 (global table dimensions, per-cell
// request vectors) on the same instance as
// BenchmarkAblationOptimisedMinCost, quantifying what the
// subtree-bounded tables and back-pointer reconstruction buy.
func BenchmarkAblationPaperReference(b *testing.B) {
	src := replicatree.NewRNG(9)
	t := tree.MustGenerate(tree.FatConfig(40), src)
	existing, _ := tree.RandomReplicas(t, 10, 1, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinCostPaperReference(t, existing, 10, exper.Exp1Cost()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationOptimisedMinCost is the optimised DP on the
// BenchmarkAblationPaperReference instance.
func BenchmarkAblationOptimisedMinCost(b *testing.B) {
	src := replicatree.NewRNG(9)
	t := tree.MustGenerate(tree.FatConfig(40), src)
	existing, _ := tree.RandomReplicas(t, 10, 1, src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.MinCost(t, existing, 10, exper.Exp1Cost()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkUpdateIntervalStudy times the Section 6 lazy-vs-systematic
// update study at reduced scale and reports the total-cost advantage of
// the best periodic strategy over the systematic one.
func BenchmarkUpdateIntervalStudy(b *testing.B) {
	cfg := exper.DefaultIntervals()
	cfg.Trees = 5
	cfg.Horizon = 30
	var last *exper.IntervalResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exper.RunIntervals(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	best, systematic := math.Inf(1), 0.0
	for _, row := range last.Rows {
		if row.TotalCost < best {
			best = row.TotalCost
		}
		if row.Name == "systematic" {
			systematic = row.TotalCost
		}
	}
	b.ReportMetric((systematic/best-1)*100, "systematic-overhead-%")
}

// --- Flow-engine micro-benchmarks (all access policies) ---

// benchPolicyWorkload builds a paper workload (100-node fat or high
// tree), a valid W=10 placement and a reusable engine. The closest
// greedy placement is valid under all three policies, so every policy
// benchmark evaluates the same instance.
func benchPolicyWorkload(b *testing.B, high bool) (*tree.Engine, *tree.Replicas) {
	b.Helper()
	cfg := tree.FatConfig(100)
	if high {
		cfg = tree.HighConfig(100)
	}
	tr := tree.MustGenerate(cfg, replicatree.NewRNG(exper.DefaultSeed))
	r, err := replicatree.GreedyMinReplicas(tr, 10)
	if err != nil {
		b.Fatal(err)
	}
	return tree.NewEngine(tr), r
}

// benchConstraints builds loose-but-real constraints for the workload:
// every client bounded to the tree height + 1 hops (satisfiable by any
// server) and every link capped at the total request count, so the
// constrained code paths run in full without invalidating the greedy
// placement.
func benchConstraints(tr *tree.Tree) *tree.Constraints {
	c := tree.NewConstraints(tr)
	c.SetUniformQoS(tr, tr.Height()+1)
	c.SetUniformBandwidth(tr.TotalRequests())
	return c
}

// BenchmarkFlows times one flow evaluation per policy on the paper's
// 100-node trees, with and without QoS/bandwidth constraints. With a
// reused engine every variant must run allocation-free (watch
// allocs/op); one warm-up evaluation lets the constrained passes grow
// their pending-demand scratch before counting.
func BenchmarkFlows(b *testing.B) {
	for _, shape := range []struct {
		name string
		high bool
	}{{"fat100", false}, {"high100", true}} {
		e, r := benchPolicyWorkload(b, shape.high)
		cons := benchConstraints(e.Tree())
		for _, p := range tree.Policies() {
			b.Run(shape.name+"/"+p.String(), func(b *testing.B) {
				b.ReportAllocs()
				unserved := 0
				for i := 0; i < b.N; i++ {
					res := e.EvalUniform(r, p, 10)
					unserved += res.Unserved
				}
				if unserved != 0 {
					b.Fatalf("benchmark placement invalid: %d unserved", unserved)
				}
			})
			b.Run(shape.name+"/"+p.String()+"/constrained", func(b *testing.B) {
				e.EvalUniformConstrained(r, p, 10, cons) // warm up scratch
				b.ResetTimer()
				b.ReportAllocs()
				unserved := 0
				for i := 0; i < b.N; i++ {
					res := e.EvalUniformConstrained(r, p, 10, cons)
					unserved += res.Unserved
				}
				if unserved != 0 {
					b.Fatalf("constrained benchmark placement invalid: %d unserved", unserved)
				}
			})
		}
	}
}

// BenchmarkValidate times one full validation per policy on the same
// workloads (evaluation plus the capacity check), with and without
// constraints.
func BenchmarkValidate(b *testing.B) {
	for _, shape := range []struct {
		name string
		high bool
	}{{"fat100", false}, {"high100", true}} {
		e, r := benchPolicyWorkload(b, shape.high)
		cons := benchConstraints(e.Tree())
		for _, p := range tree.Policies() {
			b.Run(shape.name+"/"+p.String(), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := e.ValidateUniform(r, p, 10); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(shape.name+"/"+p.String()+"/constrained", func(b *testing.B) {
				e.EvalUniformConstrained(r, p, 10, cons) // warm up scratch
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := e.ValidateUniformConstrained(r, p, 10, cons); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkMinReplicasQoS times the exact constrained DP (arXiv
// 0706.3350) against the constrained greedy on a 100-node paper
// workload with a 4-hop QoS bound.
func BenchmarkMinReplicasQoS(b *testing.B) {
	for _, shape := range []struct {
		name string
		high bool
	}{{"fat100", false}, {"high100", true}} {
		cfg := tree.FatConfig(100)
		if shape.high {
			cfg = tree.HighConfig(100)
		}
		tr := tree.MustGenerate(cfg, replicatree.NewRNG(exper.DefaultSeed))
		cons := tree.NewConstraints(tr)
		cons.SetUniformQoS(tr, 4)
		b.Run(shape.name+"/exact", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.MinReplicasQoS(tr, 10, cons); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(shape.name+"/greedy", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := replicatree.GreedyMinReplicasConstrained(tr, 10, cons); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
