// The BenchmarkScale tier exercises the CSR tree layout and the
// subtree-parallel DP far beyond the paper's experiments: fat trees
// with sparse demand (tree.ScalePreset) at 10^4 nodes by default and at
// 10^5 and 10^6 nodes when REPLICATREE_SCALE is set (any non-empty
// value). The 10^4 size doubles as the CI smoke tier; the gated sizes
// are for acceptance runs and the README numbers:
//
//	REPLICATREE_SCALE=1 go test -run '^$' -bench Scale -benchtime=1x
//
// To select one gated size, anchor the sub-benchmark level — the
// pattern n=100000 also matches n=1000000 unanchored:
//
//	-bench 'ScaleColdSolve/n=100000$'
package replicatree_test

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"replicatree"
	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/exper"
	"replicatree/internal/tree"
)

// scaleWorkers pairs the sequential baseline with a parallel run sized
// to the machine instead of a hardcoded 8, so constrained CI runners
// still measure a real speedup.
func scaleWorkers() []int {
	return []int{1, max(2, runtime.GOMAXPROCS(0))}
}

// scaleW is the server capacity of the scale tier. Larger than the
// paper's W=10 so the optimal server count — and with it the capped
// table dimension (see MinCostSolver's capB) — stays in the thousands
// even at 10^6 nodes.
const scaleW = 100

func scaleSizes() []int {
	sizes := []int{10_000}
	if os.Getenv("REPLICATREE_SCALE") != "" {
		sizes = append(sizes, 100_000, 1_000_000)
	}
	return sizes
}

func scaleTree(b *testing.B, n int) *tree.Tree {
	b.Helper()
	return tree.MustGenerate(tree.ScalePreset(n), replicatree.NewRNG(exper.DefaultSeed))
}

// scaleDriftNodes picks k client-bearing nodes spread across the tree,
// so a drift step dirties a fixed number of ancestor chains at every
// size (comparable per-step work, unlike percentage drift).
func scaleDriftNodes(t *tree.Tree, k int) []int {
	var nodes []int
	stride := t.N()/k + 1
	for j := 0; j < t.N() && len(nodes) < k; j++ {
		if len(t.Clients(j)) > 0 {
			nodes = append(nodes, j)
			j += stride - 1
		}
	}
	return nodes
}

// BenchmarkScaleColdSolve times a full (invalidated) MinCost solve of a
// mega tree, sequentially and wave-parallel. The workers=1 vs workers=8
// pair is the headline of the subtree-parallel DP: identical results
// (TestWaveParallelDeterminismMinCost), wall-clock divided.
func BenchmarkScaleColdSolve(b *testing.B) {
	for _, n := range scaleSizes() {
		t := scaleTree(b, n)
		for _, workers := range scaleWorkers() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				solver := core.NewMinCostSolver(t)
				solver.SetWorkers(workers)
				dst := tree.ReplicasOf(t)
				if _, err := solver.SolveInto(nil, scaleW, cost.Simple{}, dst); err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					solver.Invalidate()
					if _, err := solver.SolveInto(nil, scaleW, cost.Simple{}, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkScaleDriftStep times one incremental re-solve after 8
// spread-out demand edits. The dirty ancestor chains are a vanishing
// fraction of a mega tree, so a step costs a small fraction of
// BenchmarkScaleColdSolve at the same size — re-merging the capB-wide
// tables near the root, which the breakpoint-compressed kernels price
// by run count rather than row width.
func BenchmarkScaleDriftStep(b *testing.B) {
	for _, n := range scaleSizes() {
		t := scaleTree(b, n)
		nodes := scaleDriftNodes(t, 8)
		for _, workers := range scaleWorkers() {
			b.Run(fmt.Sprintf("n=%d/workers=%d", n, workers), func(b *testing.B) {
				solver := core.NewMinCostSolver(t)
				solver.SetWorkers(workers)
				dst := tree.ReplicasOf(t)
				for warm := 0; warm < 2; warm++ {
					for _, j := range nodes {
						t.SetDemand(j, 0, 1+warm%2)
					}
					if _, err := solver.SolveInto(nil, scaleW, cost.Simple{}, dst); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					for _, j := range nodes {
						t.SetDemand(j, 0, 1+i%2)
					}
					if _, err := solver.SolveInto(nil, scaleW, cost.Simple{}, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkScaleFlowEval times one full flow evaluation (closest
// policy) of a greedy placement on a mega tree — the pure CSR traversal
// cost, no DP: O(N) over the flat child and client spans.
func BenchmarkScaleFlowEval(b *testing.B) {
	for _, n := range scaleSizes() {
		t := scaleTree(b, n)
		r, err := replicatree.GreedyMinReplicas(t, scaleW)
		if err != nil {
			b.Fatal(err)
		}
		e := tree.NewEngine(t)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			unserved := 0
			for i := 0; i < b.N; i++ {
				res := e.EvalUniform(r, tree.PolicyClosest, scaleW)
				unserved += res.Unserved
			}
			if unserved != 0 {
				b.Fatalf("placement invalid: %d unserved", unserved)
			}
		})
	}
}

// BenchmarkCompressedMergeSteadyState times sequential cold re-solves
// on the 10^4-node scale tree, where the capB-wide tables near the root
// sit far above the compression activation width, so the merges run on
// breakpoint rows (the benchmark fails if they did not engage). Paired
// with the CI zero-alloc gate it also proves the compressed kernels'
// encode/decode scratch is fully arena-retained in steady state.
func BenchmarkCompressedMergeSteadyState(b *testing.B) {
	t := scaleTree(b, 10_000)
	solver := core.NewMinCostSolver(t)
	dst := tree.ReplicasOf(t)
	for warm := 0; warm < 2; warm++ {
		solver.Invalidate()
		if _, err := solver.SolveInto(nil, scaleW, cost.Simple{}, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		solver.Invalidate()
		if _, err := solver.SolveInto(nil, scaleW, cost.Simple{}, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if solver.Stats().RowsCompressed == 0 {
		b.Fatal("the compressed merge kernel never engaged")
	}
}

// BenchmarkParallelDPSteadyState is the wave-parallel counterpart of
// BenchmarkMinCostSolverReuse: full table rebuilds through a solver
// whose bottom-up pass fans across a persistent worker pool. Steady
// state must stay allocation-free — the pool parks on pre-allocated
// channels and each worker owns a retained arena — and the CI zero-alloc
// gate enforces it.
func BenchmarkParallelDPSteadyState(b *testing.B) {
	t := scaleTree(b, 10_000)
	solver := core.NewMinCostSolver(t)
	solver.SetWorkers(4)
	dst := tree.ReplicasOf(t)
	for warm := 0; warm < 2; warm++ {
		if _, err := solver.SolveInto(nil, scaleW, cost.Simple{}, dst); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		solver.Invalidate()
		if _, err := solver.SolveInto(nil, scaleW, cost.Simple{}, dst); err != nil {
			b.Fatal(err)
		}
	}
}
