package replicatree_test

import (
	"math"
	"testing"

	"replicatree"
)

// TestFacadeEndToEnd drives the whole public API surface the way a
// downstream user would: build a tree, solve all four problems, run the
// baseline and the heuristic, and simulate the winning placement.
func TestFacadeEndToEnd(t *testing.T) {
	b := replicatree.NewBuilder()
	a := b.AddNode(b.Root())
	n1 := b.AddNode(a)
	n2 := b.AddNode(a)
	b.AddClient(n1, 4)
	b.AddClient(n2, 7)
	b.AddClient(b.Root(), 2)
	tr := b.MustBuild()

	// MinCost-NoPre.
	count, err := replicatree.MinReplicaCount(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if count != 2 {
		t.Fatalf("MinReplicaCount = %d, want 2", count)
	}

	// MinCost-WithPre with a pre-existing server.
	existing := replicatree.ReplicasOf(tr)
	existing.Set(n1, 1)
	res, err := replicatree.MinCost(tr, existing, 10, replicatree.SimpleCost{Create: 0.1, Delete: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reused != 1 {
		t.Fatalf("Reused = %d, want 1", res.Reused)
	}
	if err := replicatree.ValidateUniform(tr, res.Placement, 10); err != nil {
		t.Fatal(err)
	}

	// Greedy baseline agrees on the count.
	g, err := replicatree.GreedyMinReplicas(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Count() != res.Servers {
		t.Fatalf("greedy %d servers, DP %d", g.Count(), res.Servers)
	}

	// Power: modes {5,10}, paper Experiment 3 model.
	pm, err := replicatree.NewPowerModel([]int{5, 10}, 12.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	cm := replicatree.UniformModalCost(2, 0.1, 0.01, 0.001)
	solver, err := replicatree.SolvePower(replicatree.PowerProblem{
		Tree: tr, Existing: existing, Power: pm, Cost: cm,
	})
	if err != nil {
		t.Fatal(err)
	}
	opt := solver.MinPower()
	front := solver.Front()
	if len(front) == 0 || opt == nil {
		t.Fatal("no power solutions")
	}
	if err := replicatree.ValidateSolution(tr, opt.Placement, func(m uint8) int { return pm.Cap(int(m)) }); err != nil {
		t.Fatal(err)
	}

	// The heuristic and the sweep are never better than the optimum.
	sweep, err := replicatree.GreedyPowerSweep(tr, existing, pm, cm, math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Found && sweep.Power < opt.Power-1e-9 {
		t.Fatalf("sweep %v beat the optimum %v", sweep.Power, opt.Power)
	}
	h, err := replicatree.HeuristicPowerAware(tr, existing, pm, cm, math.Inf(1), replicatree.HeuristicOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if h.Found && h.Power < opt.Power-1e-9 {
		t.Fatalf("heuristic %v beat the optimum %v", h.Power, opt.Power)
	}

	// Simulate the optimal placement for 10 time units.
	sim, err := replicatree.NewSimulator(tr, opt.Placement, pm)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(10)
	m := sim.Metrics()
	if m.Dropped != 0 || m.Violations != 0 {
		t.Fatalf("simulation dropped traffic: %+v", m)
	}
	if math.Abs(m.Energy-10*opt.Power) > 1e-9 {
		t.Fatalf("energy %v, want %v", m.Energy, 10*opt.Power)
	}
}

func TestFacadeGeneratorsAndSerialisation(t *testing.T) {
	src := replicatree.NewRNG(7)
	tr, err := replicatree.GenerateTree(replicatree.FatConfig(60), src)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 60 {
		t.Fatalf("generated %d nodes", tr.N())
	}
	existing, err := replicatree.RandomReplicas(tr, 10, 2, replicatree.DeriveRNG(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	tally, err := replicatree.TallyReplicas(existing, replicatree.ReplicasOf(tr), 2)
	if err != nil {
		t.Fatal(err)
	}
	if tally.Servers() != 10 {
		t.Fatalf("tally servers = %d", tally.Servers())
	}
	// Parent-vector and flow helpers are reachable.
	tr2, err := replicatree.FromParents([]int{-1, 0}, [][]int{{3}, {4}})
	if err != nil {
		t.Fatal(err)
	}
	r := replicatree.ReplicasOf(tr2)
	r.Set(0, 1)
	loads, unserved := replicatree.Flows(tr2, r)
	if unserved != 0 || loads[0] != 7 {
		t.Fatalf("flows: %v / %d", loads, unserved)
	}
	if got := replicatree.Assignments(tr2, r); got[1] != 0 {
		t.Fatalf("assignments: %v", got)
	}
}

// TestFacadePolicies drives the policy-parametric surface: the policy
// constants, parser, flow engine, greedy and simulator under every
// access policy.
func TestFacadePolicies(t *testing.T) {
	b := replicatree.NewBuilder()
	a := b.AddNode(b.Root())
	bb := b.AddNode(a)
	b.AddClient(bb, 4)
	b.AddClient(bb, 3)
	tr := b.MustBuild()

	for _, p := range []replicatree.Policy{
		replicatree.PolicyClosest, replicatree.PolicyUpwards, replicatree.PolicyMultiple,
	} {
		got, err := replicatree.ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}

	r := replicatree.ReplicasOf(tr)
	r.Set(bb, 1)
	r.Set(tr.Root(), 1)
	if err := replicatree.ValidatePolicy(tr, r, replicatree.PolicyClosest, 5); err == nil {
		t.Fatal("closest accepted an overloaded server")
	}
	if err := replicatree.ValidatePolicy(tr, r, replicatree.PolicyUpwards, 5); err != nil {
		t.Fatalf("upwards: %v", err)
	}
	loads, unserved := replicatree.FlowsPolicy(tr, r, replicatree.PolicyMultiple, 5)
	if unserved != 0 || loads[bb] != 5 {
		t.Fatalf("multiple loads = %v unserved = %d", loads, unserved)
	}

	engine := replicatree.NewFlowEngine(tr)
	if res := engine.EvalUniform(r, replicatree.PolicyUpwards, 5); res.Unserved != 0 {
		t.Fatalf("engine upwards unserved = %d", res.Unserved)
	}

	sol, err := replicatree.GreedyMinReplicasPolicy(tr, 5, replicatree.PolicyUpwards)
	if err != nil {
		t.Fatal(err)
	}
	if err := replicatree.ValidatePolicy(tr, sol, replicatree.PolicyUpwards, 5); err != nil {
		t.Fatal(err)
	}

	pm, err := replicatree.NewPowerModel([]int{5}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := replicatree.NewPolicySimulator(tr, r, pm, replicatree.PolicyMultiple)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(1)
	if m := sim.Metrics(); m.Served != 7 || m.Dropped != 0 {
		t.Fatalf("simulator metrics = %+v", m)
	}

	// The heuristic accepts the policy through its options.
	cm := replicatree.UniformModalCost(1, 0.1, 0.01, 0.001)
	h, err := replicatree.HeuristicPowerAware(tr, nil, pm, cm, math.Inf(1),
		replicatree.HeuristicOptions{Policy: replicatree.PolicyMultiple})
	if err != nil || !h.Found {
		t.Fatalf("heuristic under multiple: %+v, %v", h, err)
	}
}

// TestFacadeFailures drives the failure-injection surface through the
// facade: scripted and stochastic schedules, masked evaluation, masked
// incremental solving, availability hedging and the simulator's repair
// loop.
func TestFacadeFailures(t *testing.T) {
	b := replicatree.NewBuilder()
	a := b.AddNode(b.Root())
	n1 := b.AddNode(a)
	n2 := b.AddNode(a)
	b.AddClient(n1, 4)
	b.AddClient(n2, 7)
	tr := b.MustBuild()

	// Scripted schedule into a mask.
	sched := replicatree.NewFailureSchedule()
	sched.Add(1, replicatree.NodeCrash, n1)
	sched.Add(3, replicatree.NodeRecover, n1)
	mask := replicatree.NewFailureMask(tr.N())
	if !sched.AdvanceTo(1, mask) || mask.DownNodes() != 1 {
		t.Fatalf("schedule did not crash node %d", n1)
	}

	// Masked evaluation: n1's clients are failure-unserved.
	r := replicatree.ReplicasOf(tr)
	r.Set(n1, 1)
	r.Set(n2, 1)
	engine := replicatree.NewFlowEngine(tr)
	res := engine.EvalUniformMasked(r, replicatree.PolicyClosest, 10, mask)
	if res.FailUnserved != 4 || res.Issued != 11 {
		t.Fatalf("masked eval = %+v, want 4 of 11 failure-unserved", res)
	}

	// Masked incremental solve avoids the down node.
	solver := replicatree.NewMinCostSolver(tr)
	solver.SetMask(mask)
	sol, err := solver.Solve(nil, 10, replicatree.SimpleCost{Create: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Placement.Has(n1) {
		t.Fatal("masked solve placed a replica on a down node")
	}
	if st := solver.Stats(); st.MaskedNodes != 1 {
		t.Fatalf("MaskedNodes = %d, want 1", st.MaskedNodes)
	}

	// Hedging pads coverage; expected loss is finite and sane.
	hedged, err := replicatree.GreedyMinReplicasHedged(tr, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !replicatree.CoverageOK(tr, hedged, 2) {
		t.Fatal("hedged placement misses K=2 coverage")
	}
	up := make([]float64, tr.N())
	p := replicatree.UpProbability(40, 8)
	for j := range up {
		up[j] = p
	}
	exp, err := replicatree.ExpectedUnserved(tr, hedged, up, replicatree.PolicyClosest)
	if err != nil || exp < 0 || exp > 11 {
		t.Fatalf("ExpectedUnserved = %v, %v", exp, err)
	}

	// Simulated failures with online repair through the facade.
	stoch, err := replicatree.StochasticFailures(replicatree.StochasticFailureConfig{
		Nodes: tr.N(), Horizon: 40, MTTF: 10, MTTR: 3, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := replicatree.NewPowerModel([]int{12}, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	modes := hedged.Clone()
	if err := pm.AssignModes(tr, modes); err != nil {
		t.Fatal(err)
	}
	sim, err := replicatree.NewSimulator(tr, modes, pm)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.WithFailures(stoch, replicatree.FailureOptions{Repair: true}); err != nil {
		t.Fatal(err)
	}
	sim.Step(40)
	m := sim.Metrics()
	if m.Issued != 40*11 {
		t.Fatalf("Issued = %d, want %d", m.Issued, 40*11)
	}
	if m.Served+m.Dropped+m.UnservedDemand != m.Issued {
		t.Fatalf("conservation violated: %+v", m)
	}
	for j, av := range sim.Availability() {
		if av < 0 || av > 1 {
			t.Fatalf("availability[%d] = %v", j, av)
		}
	}
}
