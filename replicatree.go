// Package replicatree is a complete implementation of the algorithms in
//
//	Benoit, Renaud-Goud, Robert: "Power-aware replica placement and
//	update strategies in tree networks" (IPPS 2011).
//
// It places replica servers in a fixed distribution tree where leaf
// clients issue requests served by their closest equipped ancestor, and
// answers four optimisation problems exactly:
//
//   - MinCost-NoPre — the classical minimal-server placement;
//   - MinCost-WithPre — minimal-cost reconfiguration of an existing
//     deployment (Theorem 1, O(N⁵) dynamic programming);
//   - MinPower — minimal power with multi-modal servers (NP-complete in
//     the number of modes, Theorem 2; see internal/npc for the
//     constructive reduction);
//   - MinPower-BoundedCost — minimal power under a reconfiguration cost
//     threshold, with or without pre-existing servers (Theorem 3,
//     polynomial for a fixed number of modes), including the full
//     cost/power Pareto front.
//
// The greedy baseline of Wu, Lin and Liu the paper compares against, a
// faster local-search heuristic (the paper's future work), a
// request-flow simulator, and harnesses regenerating every figure of the
// paper's evaluation (cmd/replicasim) are included.
//
// Beyond the paper's closest policy, the library implements the Upwards
// and Multiple access policies of the companion line of work (Benoit,
// Rehn & Robert, arXiv cs/0611034) behind the Policy type: a reusable,
// allocation-free FlowEngine evaluates and validates placements under
// any policy, the greedy baseline, heuristic and simulator are
// policy-parametric, and the exact dynamic programs — which assume the
// closest policy — are cross-validated against exponential searches on
// small trees. See internal/tree's package documentation for the policy
// semantics.
//
// QoS (distance) and bandwidth constraints in the sense of Rehn-Sonigo
// (arXiv 0706.3350) attach to any tree through the Constraints type:
// the flow engine evaluates and validates under them for all three
// policies, MinReplicasQoS is the paper's exact polynomial algorithm
// for constrained replica counting under the closest policy, and the
// greedy baseline, heuristics and simulator are constraint-aware. Use
// EvalPlacement and CheckPlacement to evaluate untrusted input without
// the engine's internal panic contract.
//
// Failure injection turns the static model into a fault-tolerant one: a
// FailureSchedule scripts (or draws, seeded, from MTTF/MTTR histories)
// node crashes and link cuts into a FailureMask, the flow engine
// evaluates degraded service under any policy through EvalMasked, the
// MinCost solver places around down nodes incrementally
// (MinCostSolver.SetMask), the simulator replays fault schedules with
// Simulator.WithFailures — optionally running an online repair loop —
// and HedgePlacement pads placements to K-redundant coverage so
// failures find standby servers already in place. See internal/failure
// for the degradation contract.
//
// # Quick start
//
//	b := replicatree.NewBuilder()
//	region := b.AddNode(b.Root())
//	b.AddClient(region, 7) // a client issuing 7 requests per time unit
//	t := b.MustBuild()
//
//	res, err := replicatree.MinCost(t, nil, 10, replicatree.SimpleCost{Create: 0.1, Delete: 0.01})
//	if err != nil { ... }
//	fmt.Println(res.Placement, res.Cost)
//
// See the examples directory for complete programs.
package replicatree

import (
	"replicatree/internal/core"
	"replicatree/internal/cost"
	"replicatree/internal/failure"
	"replicatree/internal/greedy"
	"replicatree/internal/heuristic"
	"replicatree/internal/netsim"
	"replicatree/internal/power"
	"replicatree/internal/rng"
	"replicatree/internal/tree"
)

// Core model types.
type (
	// Tree is a fixed distribution tree of internal nodes and leaf
	// clients.
	Tree = tree.Tree
	// Builder constructs trees incrementally from the root down.
	Builder = tree.Builder
	// GenConfig parameterises the random tree generators used in the
	// paper's evaluation.
	GenConfig = tree.GenConfig
	// Replicas maps nodes to operating modes; it describes both
	// pre-existing deployments and computed solutions.
	Replicas = tree.Replicas
	// TreeStats summarises a tree.
	TreeStats = tree.Stats
	// CapacityError reports an overloaded server or unserved requests.
	CapacityError = tree.CapacityError
	// QoSError reports a client served beyond its QoS bound.
	QoSError = tree.QoSError
	// BandwidthError reports a link carrying more than its bandwidth.
	BandwidthError = tree.BandwidthError
	// Constraints carries per-client QoS bounds and per-link bandwidth
	// capacities (arXiv 0706.3350); nil means unconstrained.
	Constraints = tree.Constraints
	// Policy selects the access policy (closest, upwards, multiple).
	Policy = tree.Policy
	// FlowEngine evaluates request flows under any access policy with
	// preallocated scratch; reuse one per goroutine for hot loops.
	// Its methods panic on programming errors (wrong replica-set size,
	// nil capacities under the relaxed policies, unknown policy); use
	// EvalPlacement/CheckPlacement for untrusted input.
	FlowEngine = tree.Engine
	// FlowResult is one flow evaluation (loads and unserved requests).
	FlowResult = tree.Result

	// SimpleCost is the paper's Equation (2) reconfiguration cost.
	SimpleCost = cost.Simple
	// ModalCost is the paper's Equation (4) cost with per-mode
	// creation, deletion and mode-change prices.
	ModalCost = cost.Modal
	// Tally counts the reconfiguration actions between two
	// deployments.
	Tally = cost.Tally
	// PowerModel holds the server modes and the static+dynamic power
	// function of Section 2.2.
	PowerModel = power.Model

	// MinCostResult is an optimal MinCost-WithPre solution.
	MinCostResult = core.MinCostResult
	// MinCostSolver is the reusable, arena-backed MinCost solver for
	// one tree: steady-state SolveInto calls allocate nothing, and
	// solves are incremental — demand edits through Tree.SetDemand and
	// pre-existing set changes recompute only the dirty ancestor
	// chains (Reset rebinds the solver across trees; Invalidate forces
	// a full recompute; Stats reports the work of the last solve). One
	// solver per goroutine.
	MinCostSolver = core.MinCostSolver
	// PowerProblem is a MinPower(-BoundedCost) instance.
	PowerProblem = core.PowerProblem
	// PowerDP is the reusable, arena-backed MinPower-BoundedCost
	// solver for one tree; the PowerSolver it returns stays valid
	// until its next Solve. Like MinCostSolver it re-solves
	// incrementally under demand and pre-existing mode changes. One
	// solver per goroutine.
	PowerDP = core.PowerDP
	// PowerSolver answers every cost bound from one dynamic-program
	// run.
	PowerSolver = core.PowerSolver
	// QoSSolver is the reusable, arena-backed constrained
	// replica-counting solver for one tree; it re-solves incrementally
	// under demand edits and detects constraint mutations through
	// Constraints.Generation. One solver per goroutine.
	QoSSolver = core.QoSSolver
	// SolveStats profiles a reusable solver's most recent solve: how
	// many node tables the incremental re-solve actually rebuilt.
	SolveStats = core.SolveStats
	// PowerResult is an optimal placement with its cost and power.
	PowerResult = core.PowerResult
	// ParetoPoint is one non-dominated (cost, power) trade-off.
	ParetoPoint = core.ParetoPoint

	// SweepResult is the outcome of the greedy capacity sweep.
	SweepResult = greedy.SweepResult
	// HeuristicOptions tunes the local-search heuristic.
	HeuristicOptions = heuristic.Options
	// HeuristicResult is the local-search heuristic's outcome.
	HeuristicResult = heuristic.Result

	// Simulator replays request traffic on a placement over time.
	Simulator = netsim.Simulator
	// SimMetrics accumulates simulation results.
	SimMetrics = netsim.Metrics
	// FailureOptions configures the simulator's failure injection
	// (Simulator.WithFailures): the online repair loop, its pricing and
	// its solver parallelism.
	FailureOptions = netsim.FailureOptions

	// FailureEvent is one fault transition — a node crash or recovery,
	// a link cut or restore — pinned to a simulation step.
	FailureEvent = failure.Event
	// FailureEventKind discriminates fault transitions.
	FailureEventKind = failure.EventKind
	// FailureMask is the mutable up/down view of a tree's nodes and
	// links that schedules replay into; it implements FaultMask.
	FailureMask = failure.Mask
	// FailureSchedule is an ordered fault-event script; AdvanceTo
	// replays it into a mask step by step.
	FailureSchedule = failure.Schedule
	// StochasticFailureConfig parameterises seeded random fault
	// histories with per-node mean steps to failure and repair.
	StochasticFailureConfig = failure.StochasticConfig
	// FaultMask is the read-only up/down view the masked flow
	// evaluators (FlowEngine.EvalMasked) and the masked MinCost solver
	// consult; nil means everything up.
	FaultMask = tree.FaultMask
	// MaskedFlowResult is a flow evaluation under a fault mask: the
	// usual FlowResult plus the demand lost to failures, per client
	// node.
	MaskedFlowResult = tree.MaskedResult

	// RNG is the deterministic random stream used by generators.
	RNG = rng.Source
)

// ErrInfeasible is returned when no placement can serve every client.
var ErrInfeasible = core.ErrInfeasible

// ErrGreedyInfeasible is the sentinel the greedy baseline and the
// update heuristic wrap for unsolvable instances; check it with
// errors.Is to tell infeasibility apart from real errors. It wraps
// ErrInfeasible, so errors.Is(err, ErrInfeasible) matches
// infeasibility from every solver layer.
var ErrGreedyInfeasible = greedy.ErrInfeasible

// NoBandwidthLimit marks a link without a bandwidth constraint.
const NoBandwidthLimit = tree.NoBandwidthLimit

// Access policies (see Policy).
const (
	// PolicyClosest serves every request at the first equipped
	// ancestor (the paper's policy; the default everywhere).
	PolicyClosest = tree.PolicyClosest
	// PolicyUpwards lets whole clients bypass equipped ancestors.
	PolicyUpwards = tree.PolicyUpwards
	// PolicyMultiple lets a client's requests split across servers.
	PolicyMultiple = tree.PolicyMultiple
)

// Fault event kinds (see FailureEvent).
const (
	// NodeCrash takes a node down: it can no longer host a replica and
	// its own clients go unserved, but transit through it survives.
	NodeCrash = failure.NodeCrash
	// NodeRecover brings a crashed node back.
	NodeRecover = failure.NodeRecover
	// LinkCut severs the link from a node to its parent, cutting the
	// whole subtree off from servers above it.
	LinkCut = failure.LinkCut
	// LinkRestore repairs a cut link.
	LinkRestore = failure.LinkRestore
)

// Failure injection and availability.
var (
	// NewFailureMask returns an all-up mask over n nodes.
	NewFailureMask = failure.NewMask
	// NewFailureSchedule returns an empty fault script.
	NewFailureSchedule = failure.NewSchedule
	// StochasticFailures draws a seeded, deterministic fault schedule
	// from per-node MTTF/MTTR histories.
	StochasticFailures = failure.Stochastic
	// ExpectedUnserved is the analytic expected unserved demand of a
	// placement under independent node up-probabilities.
	ExpectedUnserved = failure.ExpectedUnserved
	// UpProbability converts MTTF/MTTR to the stationary per-node
	// availability mttf/(mttf+mttr).
	UpProbability = failure.UpProbability

	// Coverage counts, per node, the equipped nodes on its root path.
	Coverage = greedy.Coverage
	// CoverageOK reports whether every client keeps K servers (or a
	// full path) on its way to the root.
	CoverageOK = greedy.CoverageOK
	// HedgePlacement pads a placement to K-redundant coverage; padding
	// a closest-valid placement never invalidates it.
	HedgePlacement = greedy.HedgePlacement
	// GreedyMinReplicasHedged is the greedy baseline padded to
	// K-redundant coverage — the availability-hedged strategy.
	GreedyMinReplicasHedged = greedy.MinReplicasHedged
)

// Tree construction and workloads.
var (
	// NewBuilder returns a tree builder holding only the root.
	NewBuilder = tree.NewBuilder
	// FromParents builds a tree from a parent vector and client lists.
	FromParents = tree.FromParents
	// ReadTreeJSON decodes a tree from JSON.
	ReadTreeJSON = tree.ReadTreeJSON
	// NewConstraints returns an all-unbounded constraint set for a tree.
	NewConstraints = tree.NewConstraints
	// ReadInstanceJSON decodes a tree plus optional constraints.
	ReadInstanceJSON = tree.ReadInstanceJSON
	// WriteInstanceJSON writes a tree plus optional constraints.
	WriteInstanceJSON = tree.WriteInstanceJSON
	// WriteDOT renders a tree (and optional replica sets) as Graphviz.
	WriteDOT = tree.WriteDOT

	// NewReplicas returns an empty replica set over n nodes.
	NewReplicas = tree.NewReplicas
	// ReplicasOf returns an empty replica set sized for a tree.
	ReplicasOf = tree.ReplicasOf
	// ReadReplicasJSON decodes a replica set sized for a tree.
	ReadReplicasJSON = tree.ReadReplicasJSON

	// GenerateTree draws a random tree from a GenConfig.
	GenerateTree = tree.Generate
	// FatConfig is the paper's Experiment 1 workload (6-9 children).
	FatConfig = tree.FatConfig
	// HighConfig is the paper's high-tree workload (2-4 children).
	HighConfig = tree.HighConfig
	// PowerConfig is the paper's Experiment 3 workload.
	PowerConfig = tree.PowerConfig
	// RandomReplicas draws a random pre-existing deployment.
	RandomReplicas = tree.RandomReplicas
	// RedrawRequests re-draws every client's demand (Experiment 2).
	RedrawRequests = tree.RedrawRequests
	// DriftRequests re-draws each client's demand with a probability,
	// the gentle-drift mutation of the update-interval study. Both
	// mutators stamp demand generations (see Tree.SetDemand), so warm
	// solvers re-solve incrementally afterwards.
	DriftRequests = tree.DriftRequests

	// Flows evaluates closest-policy request flows for a placement.
	Flows = tree.Flows
	// FlowsPolicy evaluates single-capacity flows under any policy.
	FlowsPolicy = tree.FlowsPolicy
	// NewFlowEngine returns a reusable flow engine for one tree.
	NewFlowEngine = tree.NewEngine
	// ParsePolicy converts "closest", "upwards" or "multiple".
	ParsePolicy = tree.ParsePolicy
	// Assignments maps every node to its serving server.
	Assignments = tree.Assignments
	// ValidateSolution checks service and per-mode capacities.
	ValidateSolution = tree.Validate
	// ValidateUniform checks service under a single capacity.
	ValidateUniform = tree.ValidateUniform
	// ValidatePolicy checks a single-capacity solution under a policy.
	ValidatePolicy = tree.ValidatePolicy
	// FlowsConstrained evaluates single-capacity flows under QoS and
	// bandwidth constraints.
	FlowsConstrained = tree.FlowsConstrained
	// ValidateConstrained checks a single-capacity solution under a
	// policy with QoS and bandwidth constraints.
	ValidateConstrained = tree.ValidateConstrained

	// NewRNG returns a seeded deterministic stream.
	NewRNG = rng.New
	// DeriveRNG returns an independent sub-stream of a seed.
	DeriveRNG = rng.Derive
)

// Models.
var (
	// NewPowerModel validates and builds a power model.
	NewPowerModel = power.New
	// UniformModalCost builds an Equation (4) cost with uniform
	// prices.
	UniformModalCost = cost.UniformModal
	// TallyReplicas counts reconfiguration actions between two
	// deployments.
	TallyReplicas = cost.TallyReplicas
)

// Solvers.
var (
	// MinCost solves MinCost-WithPre optimally (Theorem 1). A nil
	// existing set gives the classical MinCost-NoPre problem.
	MinCost = core.MinCost
	// NewMinCostSolver returns a reusable MinCost solver for one tree
	// (see MinCostSolver); hot loops solving many instances on the
	// same tree should prefer it over the one-shot MinCost.
	NewMinCostSolver = core.NewMinCostSolver
	// MinReplicaCount returns the classical minimal server count.
	MinReplicaCount = core.MinReplicaCount
	// SolvePower runs the MinPower-BoundedCost dynamic program
	// (Theorem 3); one run answers every cost bound and exposes the
	// Pareto front.
	SolvePower = core.SolvePower
	// NewPowerDP returns a reusable power solver for one tree (see
	// PowerDP); hot loops should prefer it over one-shot SolvePower.
	NewPowerDP = core.NewPowerDP
	// NewQoSSolver returns a reusable constrained-counting solver for
	// one tree (see QoSSolver); constraint sweeps should prefer it
	// over one-shot MinReplicasQoS.
	NewQoSSolver = core.NewQoSSolver

	// GreedyMinReplicas is the O(N log N) baseline of Wu, Lin and
	// Liu: a minimal-cardinality placement for one capacity.
	GreedyMinReplicas = greedy.MinReplicas
	// GreedyMinReplicasPolicy places under any access policy.
	GreedyMinReplicasPolicy = greedy.MinReplicasPolicy
	// GreedyMinReplicasConstrained places under the closest policy
	// with QoS and bandwidth constraints (valid, not always minimal).
	GreedyMinReplicasConstrained = greedy.MinReplicasConstrained
	// GreedyMinReplicasPolicyConstrained places under any access
	// policy with QoS and bandwidth constraints.
	GreedyMinReplicasPolicyConstrained = greedy.MinReplicasPolicyConstrained
	// MinReplicasQoS is the exact polynomial algorithm of arXiv
	// 0706.3350: a minimal placement under the closest policy with QoS
	// and bandwidth constraints.
	MinReplicasQoS = core.MinReplicasQoS
	// GreedyPowerSweep is the paper's power-adapted greedy baseline.
	GreedyPowerSweep = greedy.PowerSweep
	// GreedyPowerSweepPolicy is the capacity sweep under any policy.
	GreedyPowerSweepPolicy = greedy.PowerSweepPolicy

	// HeuristicPowerAware is the fast local-search heuristic for
	// MinPower-BoundedCost (the paper's future-work design).
	HeuristicPowerAware = heuristic.PowerAware

	// NewSimulator replays request traffic on a placement under the
	// closest policy.
	NewSimulator = netsim.New
	// NewPolicySimulator replays traffic under any access policy.
	NewPolicySimulator = netsim.NewPolicy
	// NewConstrainedSimulator replays traffic under any access policy
	// with QoS and bandwidth constraints.
	NewConstrainedSimulator = netsim.NewConstrained
)
