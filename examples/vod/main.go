// VOD content delivery: the motivating application of the paper's
// introduction. A video-on-demand provider serves neighbourhoods from a
// fixed regional distribution tree; every neighbourhood issues a known
// request rate and replicas of the catalogue can run on any interior
// point of presence.
//
// The example deploys an initial placement for the morning demand, then
// replays an evening demand spike and computes the cheapest
// reconfiguration that reuses yesterday's servers where it can. It
// finishes by exporting the reconfiguration as Graphviz DOT.
//
//	go run ./examples/vod
package main

import (
	"fmt"
	"log"
	"os"

	"replicatree"
)

const capacity = 40 // streams one replica server can sustain

type city struct {
	name           string
	neighbourhoods []int // morning demand per neighbourhood
}

type region struct {
	name   string
	cities []city
}

func main() {
	regions := []region{
		{"east", []city{
			{"metropolis", []int{12, 18, 9, 14}},
			{"rivertown", []int{7, 5, 11}},
		}},
		{"west", []city{
			{"bayport", []int{16, 13, 10}},
			{"hillcrest", []int{6, 8}},
			{"lakeside", []int{9, 9, 12}},
		}},
	}

	// Build the tree: root (national origin) -> regions -> cities ->
	// neighbourhood points of presence, each serving one client. Any
	// interior node can host a replica.
	b := replicatree.NewBuilder()
	var hoods []int // neighbourhood node ids, in declaration order
	names := map[int]string{b.Root(): "origin"}
	for _, r := range regions {
		rid := b.AddNode(b.Root())
		names[rid] = r.name
		for _, c := range r.cities {
			cid := b.AddNode(rid)
			names[cid] = c.name
			for i, demand := range c.neighbourhoods {
				hid := b.AddNode(cid)
				names[hid] = fmt.Sprintf("%s/%d", c.name, i)
				b.AddClient(hid, demand)
				hoods = append(hoods, hid)
			}
		}
	}
	t := b.MustBuild()

	// Morning: green-field deployment (no pre-existing replicas).
	costModel := replicatree.SimpleCost{Create: 0.25, Delete: 0.05}
	morning, err := replicatree.MinCost(t, nil, capacity, costModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("morning demand: %d streams -> %d replica servers at %s, cost %.2f\n",
		t.TotalRequests(), morning.Servers, nodeNames(morning.Placement, names), morning.Cost)

	// Evening: demand doubles in the west, eases in the east.
	hi := 0
	for _, r := range regions {
		for _, c := range r.cities {
			for _, d := range c.neighbourhoods {
				evening := d * 3 / 4
				if r.name == "west" {
					evening = d * 2
				}
				t.SetClientRequests(hoods[hi], []int{evening})
				hi++
			}
		}
	}

	evening, err := replicatree.MinCost(t, morning.Placement, capacity, costModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evening demand: %d streams -> %d replica servers at %s, cost %.2f\n",
		t.TotalRequests(), evening.Servers, nodeNames(evening.Placement, names), evening.Cost)
	fmt.Printf("reconfiguration: %d of %d morning servers reused, %d created, %d deleted\n",
		evening.Reused, morning.Servers, evening.New, morning.Servers-evening.Reused)

	// Compare with rebuilding from scratch (ignoring the morning
	// deployment): the update-aware optimum is never worse.
	scratch, err := replicatree.MinCost(t, nil, capacity, costModel)
	if err != nil {
		log.Fatal(err)
	}
	naiveCost := costModel.OfReplicas(scratch.Placement, morning.Placement)
	fmt.Printf("replacing the morning deployment naively would cost %.2f (%.0f%% more)\n",
		naiveCost, (naiveCost/evening.Cost-1)*100)

	// Export the evening reconfiguration for inspection.
	f, err := os.Create("vod-evening.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := replicatree.WriteDOT(f, t, morning.Placement, evening.Placement); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote vod-evening.dot (gold = reused, green = new, blue = deleted)")
}

func nodeNames(r *replicatree.Replicas, names map[int]string) []string {
	var out []string
	for _, j := range r.Nodes() {
		out = append(out, names[j])
	}
	return out
}
