// NP-completeness demo: solve 2-Partition with a replica placement
// solver. The paper's Theorem 2 proves MinPower NP-complete by reducing
// 2-Partition to power-optimal replica placement; this example runs the
// reduction forwards — it builds the Figure 3 tree for a set of
// integers, minimises power exactly, and reads the partition back from
// which branch of each gadget received a server.
//
//	go run ./examples/npcdemo
package main

import (
	"fmt"
	"log"

	"replicatree/internal/npc"
)

func main() {
	instances := [][]int{
		{2, 2, 3, 3}, // partitionable: {2,3} vs {2,3}
		{1, 2, 2, 3}, // partitionable: {1,3} vs {2,2}
		{2, 3, 3},    // not partitionable
		{2, 2, 2},    // not partitionable (half-sum is odd)
	}
	for _, a := range instances {
		r, err := npc.New(a)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.VerifyBounds(); err != nil {
			log.Fatal(err)
		}
		res, err := r.Solve()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("a = %v (S = %d)\n", r.A, r.S)
		fmt.Printf("  reduction: %d-node tree, %d modes, P_max = %.0f\n",
			r.Tree.N(), len(r.Caps), r.PMax)
		fmt.Printf("  optimal power = %.0f -> ", res.Power)
		if res.Solvable {
			var left, right []int
			sum := 0
			inLeft := map[int]bool{}
			for _, i := range res.Partition {
				inLeft[i] = true
			}
			for i, v := range r.A {
				if inLeft[i] {
					left = append(left, v)
					sum += v
				} else {
					right = append(right, v)
				}
			}
			fmt.Printf("PARTITION EXISTS: %v vs %v (each sums to %d)\n", left, right, sum)
		} else {
			fmt.Printf("no partition (power exceeds P_max by %.0f)\n", res.Power-r.PMax)
		}
		// Cross-check against the direct subset-sum solver.
		_, want := npc.TwoPartitionExact(r.A)
		if want != res.Solvable {
			log.Fatalf("reduction disagrees with the exact oracle on %v", r.A)
		}
		fmt.Println()
	}
	fmt.Println("Every answer above was computed by the MinPower replica placement")
	fmt.Println("solver on the constructed tree and agrees with a direct subset-sum")
	fmt.Println("solver — Theorem 2's reduction, run forwards.")
}
