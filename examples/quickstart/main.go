// Quickstart: build the paper's Figure 1 tree, solve the update problem
// with and without demand at the root, and watch the optimal strategy
// flip between reusing the pre-existing server and replacing it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"replicatree"
)

func main() {
	// The Figure 1 topology: the root has child A; A has children B
	// and C with clients issuing 4 and 7 requests per time unit. A
	// replica server already runs on B. Server capacity is W = 10.
	build := func(rootRequests int) (*replicatree.Tree, *replicatree.Replicas, int) {
		b := replicatree.NewBuilder()
		a := b.AddNode(b.Root())
		nodeB := b.AddNode(a)
		nodeC := b.AddNode(a)
		b.AddClient(nodeB, 4)
		b.AddClient(nodeC, 7)
		if rootRequests > 0 {
			b.AddClient(b.Root(), rootRequests)
		}
		t := b.MustBuild()
		existing := replicatree.ReplicasOf(t)
		existing.Set(nodeB, 1)
		return t, existing, nodeB
	}

	costModel := replicatree.SimpleCost{Create: 0.1, Delete: 0.01}

	for _, rootReq := range []int{2, 4} {
		t, existing, nodeB := build(rootReq)
		res, err := replicatree.MinCost(t, existing, 10, costModel)
		if err != nil {
			log.Fatal(err)
		}
		action := "replaced by a better-placed new server"
		if res.Placement.Has(nodeB) {
			action = "reused"
		}
		fmt.Printf("root demand %d: optimal cost %.2f with %d servers at nodes %v; pre-existing server %s\n",
			rootReq, res.Cost, res.Servers, res.Placement.Nodes(), action)

		// Sanity: the placement really serves every client within W.
		if err := replicatree.ValidateUniform(t, res.Placement, 10); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println()
	fmt.Println("The trade-off is exactly the paper's Section 3.1 example: with 2 root")
	fmt.Println("requests the pre-existing server at B is worth keeping; with 4, the")
	fmt.Println("load-balance forced by W=10 makes it useless and the optimum deletes it.")
}
