// Dynamic replica management: the end-to-end setting the paper's
// Experiment 2 abstracts. Client demand changes every period; the
// operator must decide when and how to update the replica placement.
//
// This example simulates 14 periods of shifting demand with the netsim
// request-flow simulator and compares three update strategies:
//
//   - static:     never reconfigure after the initial deployment
//   - rebuild:    recompute from scratch each period (ignores reuse)
//   - update(DP): the paper's MinCost-WithPre optimum each period
//
// The update-aware optimum matches rebuild's server count while paying
// far less reconfiguration cost, and unlike static it never drops
// requests.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"replicatree"
)

const (
	capacity = 10
	periods  = 14
	stepsPer = 24 // simulated time units per period
)

func main() {
	cfg := replicatree.FatConfig(60)
	pm, err := replicatree.NewPowerModel([]int{capacity}, 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	cm := replicatree.UniformModalCost(1, 0.25, 0.05, 0)
	sc := replicatree.SimpleCost{Create: 0.25, Delete: 0.05}

	// Three identical copies of the world, one per strategy.
	base, err := replicatree.GenerateTree(cfg, replicatree.NewRNG(7))
	if err != nil {
		log.Fatal(err)
	}
	worlds := map[string]*replicatree.Tree{
		"static":     base.Clone(),
		"rebuild":    base.Clone(),
		"update(DP)": base.Clone(),
	}

	initial, err := replicatree.MinCost(base, nil, capacity, sc)
	if err != nil {
		log.Fatal(err)
	}
	sims := map[string]*replicatree.Simulator{}
	for name, w := range worlds {
		sim, err := replicatree.NewSimulator(w, initial.Placement, pm)
		if err != nil {
			log.Fatal(err)
		}
		sims[name] = sim
	}

	for p := 0; p < periods; p++ {
		// The same demand change hits every strategy's world.
		for _, name := range []string{"static", "rebuild", "update(DP)"} {
			replicatree.RedrawRequests(worlds[name], cfg, replicatree.DeriveRNG(100, p))
		}

		// rebuild: optimal placement from scratch, reuse ignored.
		res, err := replicatree.MinCost(worlds["rebuild"], nil, capacity, sc)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sims["rebuild"].Reconfigure(res.Placement, cm); err != nil {
			log.Fatal(err)
		}

		// update(DP): optimal reconfiguration of the running placement.
		cur := sims["update(DP)"].Placement()
		res, err = replicatree.MinCost(worlds["update(DP)"], cur, capacity, sc)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sims["update(DP)"].Reconfigure(res.Placement, cm); err != nil {
			log.Fatal(err)
		}

		for _, sim := range sims {
			sim.Step(stepsPer)
		}
	}

	fmt.Printf("%-12s %10s %10s %12s %14s %10s\n",
		"strategy", "served", "dropped", "energy", "reconfig cost", "servers")
	for _, name := range []string{"static", "rebuild", "update(DP)"} {
		m := sims[name].Metrics()
		fmt.Printf("%-12s %10d %10d %12.0f %14.2f %10d\n",
			name, m.Served, m.Dropped, m.Energy, m.ReconfigCost, sims[name].Placement().Count())
	}

	staticM := sims["static"].Metrics()
	rebuildM := sims["rebuild"].Metrics()
	updateM := sims["update(DP)"].Metrics()
	fmt.Println()
	if staticM.Dropped > 0 {
		fmt.Printf("static dropped %d requests: a placement tuned to old demand overflows.\n", staticM.Dropped)
	}
	if updateM.Dropped == 0 && updateM.ReconfigCost < rebuildM.ReconfigCost {
		fmt.Printf("update(DP) served everything and spent %.1f%% less on reconfiguration than rebuild.\n",
			(1-updateM.ReconfigCost/rebuildM.ReconfigCost)*100)
	}
}
