// Power saving: explore the cost/power trade-off of a replica
// deployment. An ISP runs multi-modal replica servers (the paper's
// Experiment 3 model: modes W1=5 and W2=10, P = W1³/10 + Wᵢ³) and wants
// to know how much power each extra unit of reconfiguration budget
// saves. One dynamic-program run yields the entire Pareto front; the
// greedy baseline and the local-search heuristic are evaluated against
// it.
//
//	go run ./examples/powersave
package main

import (
	"fmt"
	"log"
	"math"

	"replicatree"
)

func main() {
	// A 40-node distribution tree with 6 pre-existing servers left
	// over from the previous planning period.
	src := replicatree.NewRNG(42)
	t, err := replicatree.GenerateTree(replicatree.PowerConfig(40), src)
	if err != nil {
		log.Fatal(err)
	}
	existing, err := replicatree.RandomReplicas(t, 6, 2, replicatree.DeriveRNG(42, 1))
	if err != nil {
		log.Fatal(err)
	}

	pm, err := replicatree.NewPowerModel([]int{5, 10}, math.Pow(5, 3)/10, 3)
	if err != nil {
		log.Fatal(err)
	}
	cm := replicatree.UniformModalCost(2, 0.1, 0.01, 0.001)

	solver, err := replicatree.SolvePower(replicatree.PowerProblem{
		Tree: t, Existing: existing, Power: pm, Cost: cm,
	})
	if err != nil {
		log.Fatal(err)
	}

	front := solver.Front()
	fmt.Printf("tree: %v, %d pre-existing servers\n", t, existing.Count())
	fmt.Printf("Pareto front (%d points):\n", len(front))
	fmt.Printf("%12s %12s %10s\n", "cost", "power", "saving")
	base := front[0].Power
	for _, pt := range front {
		fmt.Printf("%12.3f %12.1f %9.1f%%\n", pt.Cost, pt.Power, (1-pt.Power/base)*100)
	}

	// Pick the knee: the point after which an extra unit of cost buys
	// less than 100 power units.
	knee := front[len(front)-1]
	for i := 1; i < len(front); i++ {
		gain := (front[i-1].Power - front[i].Power) / (front[i].Cost - front[i-1].Cost)
		if gain < 100 {
			knee = front[i-1]
			break
		}
	}
	fmt.Printf("\nknee of the curve: cost %.3f, power %.1f\n", knee.Cost, knee.Power)

	budget := knee.Cost
	opt, _ := solver.Best(budget)
	fmt.Printf("\nwith budget %.3f:\n", budget)
	fmt.Printf("  optimal DP       : power %8.1f (%d servers)\n", opt.Power, opt.Placement.Count())

	sweep, err := replicatree.GreedyPowerSweep(t, existing, pm, cm, budget)
	if err != nil {
		log.Fatal(err)
	}
	if sweep.Found {
		fmt.Printf("  greedy sweep (GR): power %8.1f (+%.1f%%)\n",
			sweep.Power, (sweep.Power/opt.Power-1)*100)
	} else {
		fmt.Printf("  greedy sweep (GR): no solution within budget\n")
	}

	heur, err := replicatree.HeuristicPowerAware(t, existing, pm, cm, budget, replicatree.HeuristicOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if heur.Found {
		fmt.Printf("  local search     : power %8.1f (+%.1f%%, %d passes)\n",
			heur.Power, (heur.Power/opt.Power-1)*100, heur.Passes)
	} else {
		fmt.Printf("  local search     : no solution within budget\n")
	}
}
