package replicatree_test

import (
	"errors"
	"testing"

	"replicatree"
)

// TestGuardedEntryPoints checks that EvalPlacement and CheckPlacement
// turn every engine panic path into an error: malformed user input must
// never crash a caller.
func TestGuardedEntryPoints(t *testing.T) {
	b := replicatree.NewBuilder()
	n := b.AddNode(b.Root())
	b.AddClient(n, 5)
	tr := b.MustBuild()
	ok := replicatree.ReplicasOf(tr)
	ok.Set(tr.Root(), 1)
	capOf := func(uint8) int { return 10 }

	cases := []struct {
		name string
		run  func() error
	}{
		{"nil tree", func() error {
			_, err := replicatree.EvalPlacement(nil, ok, replicatree.PolicyClosest, capOf, nil)
			return err
		}},
		{"nil replicas", func() error {
			return replicatree.CheckPlacement(tr, nil, replicatree.PolicyClosest, capOf, nil)
		}},
		{"size mismatch", func() error {
			return replicatree.CheckPlacement(tr, replicatree.NewReplicas(1), replicatree.PolicyClosest, capOf, nil)
		}},
		{"unknown policy", func() error {
			return replicatree.CheckPlacement(tr, ok, replicatree.Policy(9), capOf, nil)
		}},
		{"upwards without capacities", func() error {
			_, err := replicatree.EvalPlacement(tr, ok, replicatree.PolicyUpwards, nil, nil)
			return err
		}},
		{"multiple without capacities", func() error {
			_, err := replicatree.EvalPlacement(tr, ok, replicatree.PolicyMultiple, nil, nil)
			return err
		}},
		{"check without capacities", func() error {
			return replicatree.CheckPlacement(tr, ok, replicatree.PolicyClosest, nil, nil)
		}},
		{"mismatched constraints", func() error {
			other := replicatree.NewBuilder()
			other.AddNode(other.Root())
			other.AddNode(1)
			wrong := replicatree.NewConstraints(other.MustBuild())
			return replicatree.CheckPlacement(tr, ok, replicatree.PolicyClosest, capOf, wrong)
		}},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("%s: panicked: %v", tc.name, r)
				}
			}()
			if err := tc.run(); err == nil {
				t.Errorf("%s: no error", tc.name)
			}
		}()
	}

	// The happy paths still work, with and without constraints.
	if err := replicatree.CheckPlacement(tr, ok, replicatree.PolicyClosest, capOf, nil); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	cons := replicatree.NewConstraints(tr)
	cons.SetQoS(n, 0, 1) // server must sit on the client's node
	err := replicatree.CheckPlacement(tr, ok, replicatree.PolicyClosest, capOf, cons)
	var qe *replicatree.QoSError
	if !errors.As(err, &qe) {
		t.Fatalf("error = %v, want QoSError", err)
	}
	res, err := replicatree.EvalPlacement(tr, ok, replicatree.PolicyMultiple, capOf, cons)
	if err != nil {
		t.Fatal(err)
	}
	if res.Unserved != 5 {
		t.Fatalf("Unserved = %d, want 5 (QoS-expired under multiple)", res.Unserved)
	}

	// The greedy/heuristic infeasibility sentinel is exported, and the
	// module-wide ErrInfeasible matches infeasibility from every
	// solver layer.
	bb := replicatree.NewBuilder()
	bb.AddClient(bb.AddNode(bb.Root()), 50)
	_, err = replicatree.GreedyMinReplicas(bb.MustBuild(), 10)
	if !errors.Is(err, replicatree.ErrGreedyInfeasible) {
		t.Fatalf("greedy error %v does not wrap ErrGreedyInfeasible", err)
	}
	if !errors.Is(err, replicatree.ErrInfeasible) {
		t.Fatalf("greedy error %v does not match the module-wide ErrInfeasible", err)
	}
	_, err = replicatree.MinReplicaCount(bb.MustBuild(), 10)
	if !errors.Is(err, replicatree.ErrInfeasible) {
		t.Fatalf("core error %v does not match ErrInfeasible", err)
	}
}

// TestConstrainedFacadeEndToEnd drives the constrained API the way a
// downstream user would: build constraints, solve exactly, compare with
// the greedy, and simulate.
func TestConstrainedFacadeEndToEnd(t *testing.T) {
	tr, err := replicatree.GenerateTree(replicatree.HighConfig(50), replicatree.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	cons := replicatree.NewConstraints(tr)
	cons.SetUniformQoS(tr, 3)

	exact, err := replicatree.MinReplicasQoS(tr, 10, cons)
	if err != nil {
		t.Fatal(err)
	}
	grdy, err := replicatree.GreedyMinReplicasConstrained(tr, 10, cons)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Count() > grdy.Count() {
		t.Fatalf("exact DP used %d servers, greedy %d", exact.Count(), grdy.Count())
	}
	if err := replicatree.ValidateConstrained(tr, exact, replicatree.PolicyClosest, 10, cons); err != nil {
		t.Fatal(err)
	}
	unconstrained, err := replicatree.GreedyMinReplicas(tr, 10)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Count() < unconstrained.Count() {
		t.Fatalf("constrained optimum %d below unconstrained optimum %d",
			exact.Count(), unconstrained.Count())
	}

	pm, err := replicatree.NewPowerModel([]int{10}, 12.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := replicatree.NewConstrainedSimulator(tr, exact, pm, replicatree.PolicyClosest, cons)
	if err != nil {
		t.Fatal(err)
	}
	sim.Step(5)
	m := sim.Metrics()
	if m.QoSMisses != 0 {
		t.Fatalf("exact placement missed QoS %d times in simulation", m.QoSMisses)
	}
	if m.Dropped != 0 {
		t.Fatalf("exact placement dropped %d requests", m.Dropped)
	}
}
